"""Query automaton — compile forward sub-queries into one DFA.

Following Green et al. (ICDT'03) — the construction the paper cites for
its states Q — every forward-only path query becomes an NFA over
element names, all queries are unioned, and the union is determinised
by subset construction.  The resulting DFA is the finite-control of the
pushdown transducer: start tags drive DFA transitions (pushing the
previous state), end tags pop.

NFA positions are ``(sub_id, steps_matched)``:

* a ``child`` step advances on its name test;
* a ``descendant`` step additionally self-loops on *any* tag (the
  ``(.)*`` of the regex view);
* position ``len(steps)`` is the accept position of the sub-query.

The DFA alphabet is the set of concrete names appearing in any query
plus a reserved OTHER symbol: all tags not mentioned by any query are
indistinguishable to every name test, so one transition entry covers
them all.  This keeps the transition tables proportional to query size,
not document vocabulary.

The number of DFA states grows with the number and complexity of
merged queries — this is precisely the effect that makes the
PP-Transducer baseline enumerate ever more execution paths (Figure 2 of
the paper), so the construction is shared verbatim by the baseline and
by GAP.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Axis, Path, WILDCARD, XPathError

__all__ = ["QueryAutomaton", "build_automaton", "minimize_automaton", "AutomatonTooLarge"]

#: reserved alphabet symbol standing for "any tag not named by a query"
OTHER = "\0other"

#: hard cap on DFA size — a guard rail, far above what the benchmarks need
MAX_DFA_STATES = 500_000


class AutomatonTooLarge(RuntimeError):
    """Raised when subset construction exceeds :data:`MAX_DFA_STATES`."""


@dataclass(slots=True)
class QueryAutomaton:
    """The determinised query automaton (the PDT's finite control).

    Attributes
    ----------
    initial:
        DFA start state (the state of the transducer before the
        document element).
    transitions:
        ``transitions[state]`` maps a concrete tag name to the next
        state; tags absent from the dict use ``other[state]``.
    other:
        Next state for any tag outside :attr:`alphabet`.
    accepts:
        ``accepts[state]`` is the sorted tuple of sub-query ids whose
        accept position is contained in the state (the sub-queries that
        *match* when this state is entered at a start tag).
    alphabet:
        Concrete tag names the automaton distinguishes.
    dead:
        The state with no live NFA positions, or ``-1`` if unreachable.
        It is the "state 0" of the paper's running example: the state
        that merely tracks unrelated structure.
    """

    initial: int
    transitions: list[dict[str, int]]
    other: list[int]
    accepts: list[tuple[int, ...]]
    alphabet: frozenset[str]
    dead: int

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, tag: str) -> int:
        """The DFA move for a start tag."""
        nxt = self.transitions[state].get(tag)
        if nxt is None:
            return self.other[state]
        return nxt

    def all_states(self) -> range:
        return range(len(self.transitions))

    def fa_pop_candidates(self, tag: str) -> frozenset[int]:
        """FA-only restriction of pop-divergence candidates (Ogden'13).

        States that could have been pushed under an open ``<tag>``
        judged from the automaton alone: every state whose ``tag``
        transition makes progress, *plus* the dead/unrelated state (an
        unrelated ``<tag>`` can appear anywhere) — the inclusion the
        paper notes makes this restriction weak (footnote 2).
        """
        out = {q for q in range(len(self.transitions)) if self.step(q, tag) != self.dead}
        if self.dead >= 0:
            out.add(self.dead)
        return frozenset(out)

    def stats(self) -> dict[str, int]:
        """Size summary used in benchmark reports."""
        return {
            "states": self.n_states,
            "alphabet": len(self.alphabet),
            "accepting_states": sum(1 for a in self.accepts if a),
        }


def minimize_automaton(automaton: QueryAutomaton) -> QueryAutomaton:
    """Moore partition refinement: the equivalent minimal DFA.

    States are initially partitioned by their accept tuples (two states
    emitting different matches can never merge) and refined until every
    block is closed under every alphabet symbol (plus OTHER).

    Minimisation is sound for the pushdown transducer semantics: the
    stack only ever holds states that are later *restored verbatim* by
    pops, so replacing every state with its equivalence-class
    representative preserves all transitions, accepts and therefore all
    emitted events.  It is exposed as an opt-in (`QueryEngine`s take
    ``minimize=True``) rather than a default because the paper's
    evaluation — and this reproduction's benchmarks — measure the
    *unminimised* construction both systems share; an ablation
    benchmark quantifies what minimisation buys each side.
    """
    n = automaton.n_states
    symbols = sorted(automaton.alphabet)

    # initial partition: by accept signature
    block_of = {}
    signature_to_block: dict[tuple[int, ...], int] = {}
    for q in range(n):
        sig = automaton.accepts[q]
        block = signature_to_block.setdefault(sig, len(signature_to_block))
        block_of[q] = block

    while True:
        # refine: states whose successors fall in different blocks split
        refined: dict[tuple, int] = {}
        new_block_of = {}
        for q in range(n):
            key = (
                block_of[q],
                tuple(block_of[automaton.step(q, s)] for s in symbols),
                block_of[automaton.other[q]],
            )
            new_block_of[q] = refined.setdefault(key, len(refined))
        if len(refined) == len(signature_to_block):
            break
        signature_to_block = refined  # only its size matters
        block_of = new_block_of

    n_blocks = len(signature_to_block)
    if n_blocks == n:
        return automaton

    # representative per block, in block order
    rep: list[int] = [-1] * n_blocks
    for q in range(n):
        b = block_of[q]
        if rep[b] == -1:
            rep[b] = q
    transitions: list[dict[str, int]] = []
    other: list[int] = []
    accepts: list[tuple[int, ...]] = []
    for b in range(n_blocks):
        q = rep[b]
        other_target = block_of[automaton.other[q]]
        row = {}
        for s in symbols:
            target = block_of[automaton.step(q, s)]
            if target != other_target:
                row[s] = target
        transitions.append(row)
        other.append(other_target)
        accepts.append(automaton.accepts[q])
    return QueryAutomaton(
        initial=block_of[automaton.initial],
        transitions=transitions,
        other=other,
        accepts=accepts,
        alphabet=automaton.alphabet,
        dead=block_of[automaton.dead] if automaton.dead >= 0 else -1,
    )


def build_automaton(
    subqueries: list[tuple[int, Path]], minimize: bool = False
) -> QueryAutomaton:
    """Build the merged DFA for ``(sub_id, forward-only path)`` pairs."""
    for sid, path in subqueries:
        if not path.is_forward_only:
            raise XPathError(f"sub-query {sid} ({path}) is not forward-only")
        if not path.absolute:
            raise XPathError(f"sub-query {sid} ({path}) must be absolute")

    alphabet: set[str] = set()
    for _sid, path in subqueries:
        for step in path.steps:
            if step.name != WILDCARD:
                alphabet.add(step.name)

    # NFA positions are (index into subqueries, steps_matched); keep the
    # step tuples at hand for move computation.
    paths = [path.steps for _sid, path in subqueries]
    sids = [sid for sid, _path in subqueries]

    def moves(positions: frozenset[tuple[int, int]], tag: str | None) -> frozenset[tuple[int, int]]:
        """Successor position set for a concrete tag (None = OTHER)."""
        out: set[tuple[int, int]] = set()
        for qi, i in positions:
            steps = paths[qi]
            if i >= len(steps):
                continue
            step = steps[i]
            if step.axis == Axis.DESCENDANT:
                out.add((qi, i))  # self-loop: stay below, keep searching
            if step.name == WILDCARD or (tag is not None and step.name == tag):
                out.add((qi, i + 1))
        return frozenset(out)

    initial_set = frozenset((qi, 0) for qi in range(len(paths)))
    index: dict[frozenset[tuple[int, int]], int] = {initial_set: 0}
    order: list[frozenset[tuple[int, int]]] = [initial_set]
    transitions: list[dict[str, int]] = []
    other: list[int] = []

    def intern(s: frozenset[tuple[int, int]]) -> int:
        state = index.get(s)
        if state is None:
            state = len(order)
            if state >= MAX_DFA_STATES:
                raise AutomatonTooLarge(
                    f"query automaton exceeded {MAX_DFA_STATES} states; "
                    "reduce the number of merged queries"
                )
            index[s] = state
            order.append(s)
        return state

    frontier = 0
    while frontier < len(order):
        positions = order[frontier]
        frontier += 1
        row: dict[str, int] = {}
        other_target = intern(moves(positions, None))
        for tag in sorted(alphabet):  # sorted: state numbering is deterministic
            target = intern(moves(positions, tag))
            if target != other_target:
                row[tag] = target
        transitions.append(row)
        other.append(other_target)
        # `intern` may have appended states after `order[frontier:]`,
        # the loop naturally picks them up.

    accepts: list[tuple[int, ...]] = []
    for positions in order:
        done = sorted({sids[qi] for qi, i in positions if i == len(paths[qi])})
        accepts.append(tuple(done))

    dead = index.get(frozenset(), -1)
    automaton = QueryAutomaton(
        initial=0,
        transitions=transitions,
        other=other,
        accepts=accepts,
        alphabet=frozenset(alphabet),
        dead=dead,
    )
    return minimize_automaton(automaton) if minimize else automaton
