"""Recursive-descent parser for the supported XPath fragment.

Grammar (whitespace is insignificant between tokens)::

    query     := absolute-path
    path      := ('/' | '//')? steps            -- leading sep => absolute
    steps     := step (('/' | '//') step)*
    step      := (axis '::')? nametest pred*
    axis      := 'child' | 'descendant' | 'descendant-or-self'
               | 'parent' | 'ancestor' | 'self'
    nametest  := NAME | '*' | '.'
    pred      := '[' or-expr ']'
    or-expr   := and-expr ('or' and-expr)*
    and-expr  := unary ('and' unary)*
    unary     := 'not' '(' or-expr ')' | '(' or-expr ')' | path

``//`` is parsed as the following step having the DESCENDANT axis
(desugaring ``descendant-or-self::node()/child::x`` to
``descendant::x``, which is equivalent for name tests).  ``.`` parses
as ``self::*``.
"""

from __future__ import annotations

import re

from .ast import (
    Axis,
    Path,
    PredAnd,
    PredCompare,
    PredNot,
    PredOr,
    PredPath,
    Predicate,
    Step,
    WILDCARD,
    XPathError,
)

__all__ = ["parse_xpath", "parse_relative_path"]

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")

_AXES = {
    "child": Axis.CHILD,
    "descendant": Axis.DESCENDANT,
    "descendant-or-self": Axis.DESCENDANT,
    "parent": Axis.PARENT,
    "ancestor": Axis.ANCESTOR,
    "ancestor-or-self": Axis.ANCESTOR,
    "self": Axis.SELF,
}



def parse_xpath(text: str) -> Path:
    """Parse an absolute XPath query string."""
    parser = _Parser(text)
    path = parser.parse_path(require_absolute=True)
    parser.expect_end()
    return path


def parse_relative_path(text: str) -> Path:
    """Parse a relative path (as found inside predicates)."""
    parser = _Parser(text)
    path = parser.parse_path(require_absolute=False)
    parser.expect_end()
    return path


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- plumbing ------------------------------------------------------

    def error(self, message: str) -> XPathError:
        return XPathError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, s: str) -> bool:
        self.skip_ws()
        return self.text.startswith(s, self.pos)

    def accept(self, s: str) -> bool:
        if self.startswith(s):
            self.pos += len(s)
            return True
        return False

    def expect(self, s: str) -> None:
        if not self.accept(s):
            raise self.error(f"expected {s!r}")

    def expect_end(self) -> None:
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters")

    def accept_keyword(self, word: str) -> bool:
        """Accept ``word`` only when not a prefix of a longer name."""
        self.skip_ws()
        end = self.pos + len(word)
        if self.text.startswith(word, self.pos):
            if end >= len(self.text) or not (self.text[end].isalnum() or self.text[end] in "_.-"):
                self.pos = end
                return True
        return False

    # -- grammar ---------------------------------------------------------

    def parse_path(self, require_absolute: bool) -> Path:
        absolute = False
        first_axis: Axis | None = None
        if self.accept("//"):
            absolute = True
            first_axis = Axis.DESCENDANT
        elif self.accept("/"):
            absolute = True
            first_axis = Axis.CHILD
        if require_absolute and not absolute:
            raise self.error("query must be an absolute path (start with / or //)")

        steps = [self.parse_step(first_axis or Axis.CHILD)]
        while True:
            if self.accept("//"):
                steps.append(self.parse_step(Axis.DESCENDANT))
            elif self.accept("/"):
                steps.append(self.parse_step(Axis.CHILD))
            else:
                break
        return Path(tuple(steps), absolute=absolute)

    def parse_step(self, default_axis: Axis) -> Step:
        axis = default_axis
        self.skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        if m and self.text.startswith("::", m.end()):
            axis_name = m.group()
            mapped = _AXES.get(axis_name)
            if mapped is None:
                raise self.error(f"unsupported axis {axis_name!r}")
            if default_axis == Axis.DESCENDANT:
                # '//child::x' desugars to descendant::x; other axes
                # after '//' are outside the supported fragment.
                if mapped not in (Axis.CHILD, Axis.DESCENDANT):
                    raise self.error(f"'//' before axis {axis_name!r} is not supported")
                axis = Axis.DESCENDANT
            else:
                axis = mapped
            self.pos = m.end() + 2
            m = _NAME_RE.match(self.text, self.pos)

        if self.accept("*"):
            name = WILDCARD
        elif self.accept("."):
            name = WILDCARD
            axis = Axis.SELF
        elif m:
            name = m.group()
            self.pos = m.end()
        else:
            raise self.error("expected a name test")

        predicates: list[Predicate] = []
        while self.startswith("["):
            self.expect("[")
            predicates.append(self.parse_or_expr())
            self.expect("]")
        return Step(axis, name, tuple(predicates))

    def parse_or_expr(self) -> Predicate:
        parts = [self.parse_and_expr()]
        while self.accept_keyword("or"):
            parts.append(self.parse_and_expr())
        return parts[0] if len(parts) == 1 else PredOr(tuple(parts))

    def parse_and_expr(self) -> Predicate:
        parts = [self.parse_unary()]
        while self.accept_keyword("and"):
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else PredAnd(tuple(parts))

    def parse_unary(self) -> Predicate:
        if self.accept_keyword("not"):
            self.expect("(")
            inner = self.parse_or_expr()
            self.expect(")")
            return PredNot(inner)
        if self.startswith("("):
            self.expect("(")
            inner = self.parse_or_expr()
            self.expect(")")
            return inner
        path = self.parse_path(require_absolute=False)
        for op in ("!=", "="):
            if self.accept(op):
                return PredCompare(path, op, self.parse_literal())
        return PredPath(path)

    def parse_literal(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise self.error("expected a quoted string literal")
        quote = self.text[self.pos]
        close = self.text.find(quote, self.pos + 1)
        if close == -1:
            raise self.error("unterminated string literal")
        value = self.text[self.pos + 1 : close]
        self.pos = close + 1
        return value
