"""XPath substrate: parsing, rewriting, automata, filtering, oracle.

* :mod:`~repro.xpath.ast` / :mod:`~repro.xpath.parser` — the supported
  query fragment (Table 4 of the paper);
* :mod:`~repro.xpath.rewrite` — predicates and reverse axes →
  forward-only sub-queries plus a filter plan;
* :mod:`~repro.xpath.automaton` — merged query DFA (the transducer's
  finite control);
* :mod:`~repro.xpath.events` / :mod:`~repro.xpath.filtering` — output
  tape vocabulary and the sequential filter phase;
* :mod:`~repro.xpath.compile_tables` — the automaton and feasibility
  table compiled to dense arrays for the fast chunk kernel;
* :mod:`~repro.xpath.reference` — DOM-based oracle evaluator (the
  "pre-parsing" strategy of Section 2.1).
"""

from .ast import Axis, Path, Step, WILDCARD, XPathError
from .automaton import AutomatonTooLarge, QueryAutomaton, build_automaton
from .compile_tables import (
    KernelTables,
    clear_compile_cache,
    compile_cache_info,
    compile_tables,
    compiled_tables,
)
from .events import EventKind, MatchEvent, close, hit
from .subseq import (
    MemoTable,
    SubseqDict,
    clear_memo_tables,
    memo_for_tables,
    memo_info,
    set_memo_defaults,
)
from .filtering import FilterError, IntervalForest, apply_filters, collect_events
from .parser import parse_relative_path, parse_xpath
from .reference import Document, Element, build_document, evaluate, evaluate_offsets
from .rewrite import (
    AnchorSpec,
    Alternative,
    CompiledQuery,
    JoinMode,
    SubQuery,
    SubRegistry,
    Term,
    compile_queries,
    compile_query,
)

__all__ = [
    "AnchorSpec",
    "Alternative",
    "AutomatonTooLarge",
    "Axis",
    "CompiledQuery",
    "Document",
    "Element",
    "EventKind",
    "FilterError",
    "IntervalForest",
    "JoinMode",
    "KernelTables",
    "MatchEvent",
    "MemoTable",
    "Path",
    "QueryAutomaton",
    "Step",
    "SubQuery",
    "SubRegistry",
    "SubseqDict",
    "Term",
    "WILDCARD",
    "XPathError",
    "apply_filters",
    "build_automaton",
    "build_document",
    "clear_compile_cache",
    "clear_memo_tables",
    "close",
    "collect_events",
    "compile_cache_info",
    "compile_queries",
    "compile_query",
    "compile_tables",
    "compiled_tables",
    "evaluate",
    "evaluate_offsets",
    "hit",
    "memo_for_tables",
    "memo_info",
    "parse_relative_path",
    "parse_xpath",
    "set_memo_defaults",
]
