"""Structural-repetition memoization for the dense kernel.

The paper's workloads (Lineitem, XMark) are dominated by near-identical
repeated subtrees, yet the dense kernel pays full per-token cost on
every repetition.  Following Maneth & Sebastian (*XPath Node Selection
over Grammar-Compressed Trees*, arXiv:1311.5573), repeated structure
can be queried at O(1) per re-occurrence after first sight.  This
module adapts that idea to the streaming kernel:

* **subsequence interning** (:class:`SubseqDict`) — repeated tag
  *sequences* are detected with a rolling polynomial hash over the
  pre-lexed token stream and interned once.  Both the hash and the
  exact key are *structural*: the per-token sequence of kinds and
  element names, with text content deliberately excluded.  That is the
  kernel's entire observable input in the single-live-path regime —
  the fast loop never reads a TEXT token, transitions and accepts are
  functions of tag names alone, and replayed match offsets are read
  from the *current* occurrence's tokens — so near-identical repeats
  (the paper's Lineitem rows: same element skeleton, different
  character data) legitimately share one interned id.  Every hash
  candidate is still **verified by exact comparison** of the full
  structural key before an interned id is reused; a candidate whose
  key differs from every interned sequence under its hash — a genuine
  hash collision — is a **reject** (counted, journalled as
  ``memo_reject``) and is interned as its own new sequence so *its*
  future repeats can still hit;
* **transition memoization** (:class:`MemoTable`) — a bounded LRU
  mapping ``(entry state, interned subsequence id)`` to ``(exit state,
  relative match events)``.  Only *whole-element* spans (a START token
  through its matching END) are interned: inside such a span the stack
  never dips below its entry level, the net stack delta is zero and the
  exit state equals the entry state, so a recorded traversal replays
  exactly — the kernel skips the token loop and re-emits the recorded
  events with offsets rebased to the current occurrence's actual
  tokens and depths rebased to the current element depth.

The memo is consulted **only in the single-live-path regime** (the
kernel's single-stack fast loop): with one live path, no feasibility
check, divergence or convergence can fire inside a balanced span, so
replay is observationally identical — same matches, same segments, and
the same :class:`~repro.transducer.counters.WorkCounters` (a span of
``L`` tokens adds exactly ``L`` to ``stack_tokens``, hit or miss).

Memo tables are registered per :class:`KernelTables` object.  The
structural compile cache guarantees one tables object per (query,
grammar) within a process, so a grammar or query change produces a new
tables object and therefore a fresh memo — the invalidation path.  The
registry holds strong references: a registered tables object can never
be garbage collected while its memo lives, so an ``id()`` can never be
reused to read another grammar's memo.

Lock discipline mirrors the compile cache: one :class:`threading.Lock`
per memo table serialises plan construction, entry lookup/insert and
counter updates (the query service runs chunks from concurrent worker
threads); a module lock guards the registry.

When a persistent artifact store is installed (see
:func:`repro.xpath.compile_tables.set_artifact_store`), interned
subsequence dictionaries and their memo entries persist under the new
``subseq`` schema kind, keyed by a content hash of the owning tables —
a warm start reloads the memo and replays from the first run.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict

from ..xmlstream.tokens import TokenKind
from .compile_tables import KernelTables, get_artifact_store

__all__ = [
    "MemoTable",
    "SubseqDict",
    "SpanPlan",
    "memo_for_tables",
    "clear_memo_tables",
    "memo_info",
    "set_memo_defaults",
    "maybe_persist_memo",
]

_START = int(TokenKind.START)
_END = int(TokenKind.END)
_TEXT = int(TokenKind.TEXT)

#: relative-event kinds inside a recorded span
EV_HIT = 0
EV_CLOSE = 1

#: rolling-hash modulus (Mersenne prime) and base — fixed constants so
#: hashes are deterministic across processes and interpreter runs
#: (Python's own ``hash()`` is seed-salted and useless for persistence)
_MOD = (1 << 61) - 1
_BASE = 1_000_003

#: structural value of a text token: content-independent by design —
#: the fast loop never reads TEXT tokens, so character data cannot
#: influence a span's transitions, events or exit state
_TEXT_VAL = 5

#: defaults for memo tables created by the registry
_DEFAULT_CAPACITY = 4096
_DEFAULT_MIN_SPAN = 8
_DEFAULT_MAX_SPAN = 4096
#: total tokens' worth of per-chunk plans each memo table may pin
_DEFAULT_PLAN_BUDGET = 1 << 20


def _name_value(name: str, kind: int, cache: dict) -> int:
    """Deterministic structural value of one tag token."""
    v = cache.get(name)
    if v is None:
        v = zlib.crc32(name.encode("utf-8", "surrogatepass"))
        cache[name] = v
    return (v << 2) + kind + 11


class SubseqDict:
    """Interned exact token subsequences, indexed by structural hash.

    An interned sequence's *exact key* is a tuple of ``(kind, name)``
    pairs with ``name`` blanked for TEXT tokens: exactly the input the
    single-path fast loop observes.  Text content, attribute values
    and byte layout are excluded on purpose — the kernel never reads
    them inside a balanced span, and replayed events take their
    offsets from the current occurrence's actual tokens, so spans that
    differ only in character data or attribute bytes replay exactly.
    The key exists to catch what the polynomial hash alone cannot
    rule out: two structurally *different* spans colliding on
    ``(hash, length)``.

    Not thread-safe on its own; the owning :class:`MemoTable`'s lock
    serialises all access.
    """

    __slots__ = ("seqs", "by_hash", "_name_vals")

    def __init__(self) -> None:
        #: id → exact key
        self.seqs: list[tuple] = []
        #: (structural hash, length) → interned ids sharing it
        self.by_hash: dict[tuple[int, int], list[int]] = {}
        self._name_vals: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.seqs)

    # -- structural hashing -------------------------------------------

    def token_values(self, toks) -> list[int]:
        """Per-token structural values (text content excluded)."""
        cache = self._name_vals
        out = []
        append = out.append
        for t in toks:
            k = t.kind
            append(_TEXT_VAL if k == _TEXT else _name_value(t.name, k, cache))
        return out

    @staticmethod
    def prefix_hashes(values: list[int]) -> tuple[list[int], list[int]]:
        """Polynomial prefix hashes and base powers for O(1) span hashes."""
        n = len(values)
        pre = [0] * (n + 1)
        pows = [1] * (n + 1)
        h = 0
        p = 1
        for i, v in enumerate(values):
            h = (h * _BASE + v) % _MOD
            pre[i + 1] = h
            p = (p * _BASE) % _MOD
            pows[i + 1] = p
        return pre, pows

    @staticmethod
    def span_hash(pre: list[int], pows: list[int], j: int, length: int) -> int:
        return (pre[j + length] - pre[j] * pows[length]) % _MOD

    # -- interning ----------------------------------------------------

    @staticmethod
    def exact_key(toks, j: int, length: int) -> tuple:
        return tuple(
            (k, "" if k == _TEXT else t.name)
            for t in toks[j : j + length]
            for k in (int(t.kind),)
        )

    def intern(self, h: int, length: int, key: tuple) -> tuple[int, bool]:
        """Intern ``key`` under hash bucket ``(h, length)``.

        Returns ``(seq_id, rejected)``: ``rejected`` is True when the
        bucket already held sequences but none matched exactly — the
        near-repeat case the structural hash cannot distinguish.
        """
        bucket = self.by_hash.get((h, length))
        if bucket is not None:
            for sid in bucket:
                if self.seqs[sid] == key:
                    return sid, False
            rejected = True
        else:
            bucket = self.by_hash.setdefault((h, length), [])
            rejected = False
        sid = len(self.seqs)
        self.seqs.append(key)
        bucket.append(sid)
        return sid, rejected

    def has_hash(self, h: int, length: int) -> bool:
        return (h, length) in self.by_hash


class SpanPlan:
    """Per-token-list memoization plan: which spans to consult.

    ``starts`` is the sorted list of span start indices, ``spans`` maps
    a start index to its ``(seq_id, length)`` (each START token opens
    exactly one element, so the mapping is unambiguous), and
    ``rejects`` records ``(start index, length)`` of occurrences whose
    exact verification failed against an already-interned sequence.
    """

    __slots__ = ("starts", "spans", "rejects")

    def __init__(self, starts, spans, rejects) -> None:
        self.starts = starts
        self.spans = spans
        self.rejects = rejects


class _Entry:
    """One memoized traversal: exit state + relative match events.

    ``events`` is a tuple of ``(EV_HIT|EV_CLOSE, sid, token index
    within the span, depth above the span's entry depth)``; replay
    rebases offsets from the current occurrence's actual tokens.
    """

    __slots__ = ("exit_state", "events")

    def __init__(self, exit_state: int, events: tuple) -> None:
        self.exit_state = exit_state
        self.events = events


class MemoTable:
    """Shared, bounded ``(entry state, subsequence id)`` → replay memo."""

    def __init__(
        self,
        tables: KernelTables,
        capacity: int = _DEFAULT_CAPACITY,
        min_span: int = _DEFAULT_MIN_SPAN,
        max_span: int = _DEFAULT_MAX_SPAN,
        plan_budget: int = _DEFAULT_PLAN_BUDGET,
    ) -> None:
        self.tables = tables
        self.capacity = capacity
        self.min_span = max(2, min_span)
        self.max_span = max_span
        self.plan_budget = plan_budget
        self.subseqs = SubseqDict()
        self.entries: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self.lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.rejects = 0
        self.evictions = 0
        self.dirty = False
        #: id(token list) → (strong token-list ref, plan); the strong
        #: reference pins the list so its id cannot be reused while the
        #: cache entry lives
        self._plans: OrderedDict[int, tuple] = OrderedDict()
        self._plan_tokens = 0
        self._skey: str | None = None

    # -- planning ------------------------------------------------------

    def plan_for(self, toks) -> SpanPlan | None:
        """The (cached) memoization plan for one chunk's token list."""
        key = id(toks)
        with self.lock:
            cached = self._plans.get(key)
            if cached is not None and cached[0] is toks:
                self._plans.move_to_end(key)
                return cached[1]
            plan = self._build_plan(toks)
            self._plans[key] = (toks, plan)
            self._plan_tokens += len(toks)
            while self._plan_tokens > self.plan_budget and len(self._plans) > 1:
                _, (old, _p) = self._plans.popitem(last=False)
                self._plan_tokens -= len(old)
            return plan

    def _build_plan(self, toks) -> SpanPlan | None:
        """Detect repeated whole-element spans; caller holds the lock."""
        n = len(toks)
        min_span = self.min_span
        if n < min_span:
            return None
        max_span = self.max_span
        # whole-element spans: a START and its matching END inside this
        # chunk's token list (anything cut by a chunk boundary never
        # forms a span here, so replay cannot cross a split boundary)
        open_stack: list[int] = []
        spans: list[tuple[int, int]] = []
        for idx in range(n):
            k = toks[idx].kind
            if k == _START:
                open_stack.append(idx)
            elif k == _END:
                if open_stack:
                    j = open_stack.pop()
                    length = idx + 1 - j
                    if min_span <= length <= max_span:
                        spans.append((j, length))
        if not spans:
            return None

        sd = self.subseqs
        values = sd.token_values(toks)
        pre, pows = sd.prefix_hashes(values)
        span_hash = sd.span_hash

        # a span qualifies when its structural hash repeats — within
        # this list or against the already-interned dictionary
        counts: dict[tuple[int, int], int] = {}
        hashes: list[int] = []
        for j, length in spans:
            h = span_hash(pre, pows, j, length)
            hashes.append(h)
            counts[(h, length)] = counts.get((h, length), 0) + 1

        starts: list[int] = []
        plan_spans: dict[int, tuple[int, int]] = {}
        rejects: list[tuple[int, int]] = []
        n_seqs_before = len(sd.seqs)
        for (j, length), h in zip(spans, hashes):
            if counts[(h, length)] < 2 and not sd.has_hash(h, length):
                continue
            sid, rejected = sd.intern(h, length, sd.exact_key(toks, j, length))
            if rejected:
                self.rejects += 1
                rejects.append((j, length))
            plan_spans[j] = (sid, length)
            starts.append(j)
        if len(sd.seqs) != n_seqs_before:
            self.dirty = True
        if not plan_spans:
            return None
        starts.sort()
        return SpanPlan(starts, plan_spans, tuple(rejects))

    # -- memo entries --------------------------------------------------

    def lookup(self, state: int, seq_id: int) -> _Entry | None:
        """Hit/miss-counted entry lookup (LRU touch on hit)."""
        key = (state, seq_id)
        with self.lock:
            e = self.entries.get(key)
            if e is not None:
                self.hits += 1
                self.entries.move_to_end(key)
            else:
                self.misses += 1
            return e

    def flush_chunk(self, hits: int, misses: int, touched: list) -> None:
        """Batched counter/LRU update from one chunk's fast loop.

        The kernel reads ``entries.get`` directly — a GIL-atomic dict
        lookup needing no lock (a concurrently evicted entry is still a
        valid immutable object) — and defers hit/miss counting and LRU
        touches to one locked flush per fast-loop pass, so the per-span
        overhead stays below the cost of re-running a small span.
        Counter totals remain exact; only the touch timing is batched.
        """
        with self.lock:
            self.hits += hits
            self.misses += misses
            entries = self.entries
            for key in touched:
                if key in entries:
                    entries.move_to_end(key)

    def insert(self, state: int, seq_id: int, exit_state: int, events: tuple) -> None:
        key = (state, seq_id)
        with self.lock:
            if key not in self.entries:
                self.entries[key] = _Entry(exit_state, events)
                self.dirty = True
                while len(self.entries) > self.capacity:
                    self.entries.popitem(last=False)
                    self.evictions += 1

    # -- stats / persistence ------------------------------------------

    def stats(self) -> dict[str, int]:
        with self.lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "rejects": self.rejects,
                "evictions": self.evictions,
                "entries": len(self.entries),
                "sequences": len(self.subseqs),
                "capacity": self.capacity,
            }

    def store_key(self) -> str:
        """Content hash of the owning tables — the persistence key."""
        if self._skey is None:
            from hashlib import sha256

            from ..store import codec

            self._skey = sha256(codec.encode_kernel_tables(self.tables)).hexdigest()
        return self._skey

    def snapshot(self) -> tuple[list[tuple], dict]:
        """A consistent (sequences, entries) copy for encoding."""
        with self.lock:
            seqs = list(self.subseqs.seqs)
            entries = {
                key: (e.exit_state, e.events) for key, e in self.entries.items()
            }
            return seqs, entries

    def adopt(self, seqs: list[tuple], entries: dict) -> None:
        """Preload a decoded snapshot (fresh table only, pre-publication)."""
        with self.lock:
            sd = self.subseqs
            for key in seqs:
                values = [
                    _TEXT_VAL
                    if kind == _TEXT
                    else _name_value(name, kind, sd._name_vals)
                    for kind, name in key
                ]
                h = 0
                for v in values:
                    h = (h * _BASE + v) % _MOD
                sid = len(sd.seqs)
                sd.seqs.append(key)
                sd.by_hash.setdefault((h, len(key)), []).append(sid)
            for (state, sid), (exit_state, events) in sorted(entries.items()):
                if sid < len(sd.seqs):
                    self.entries[(state, sid)] = _Entry(exit_state, tuple(events))
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)
                self.evictions += 1


# ---------------------------------------------------------------------------
# per-tables registry
# ---------------------------------------------------------------------------

_registry: OrderedDict[int, MemoTable] = OrderedDict()
_registry_lock = threading.Lock()
#: bounded: each slot pins one KernelTables strongly (via MemoTable.tables)
_REGISTRY_MAX = 16


def set_memo_defaults(
    capacity: int | None = None,
    min_span: int | None = None,
    max_span: int | None = None,
) -> dict[str, int]:
    """Adjust defaults for registry-created memo tables (tests/tuning).

    Returns the previous defaults so callers can restore them.
    """
    global _DEFAULT_CAPACITY, _DEFAULT_MIN_SPAN, _DEFAULT_MAX_SPAN
    prev = {
        "capacity": _DEFAULT_CAPACITY,
        "min_span": _DEFAULT_MIN_SPAN,
        "max_span": _DEFAULT_MAX_SPAN,
    }
    if capacity is not None:
        _DEFAULT_CAPACITY = capacity
    if min_span is not None:
        _DEFAULT_MIN_SPAN = min_span
    if max_span is not None:
        _DEFAULT_MAX_SPAN = max_span
    return prev


def memo_for_tables(tables: KernelTables) -> MemoTable:
    """The process-wide memo table for one compiled-tables object.

    The registry key is the tables' identity; the held strong reference
    makes identity a sound key (no id reuse while registered), and the
    structural compile cache makes identity equivalent to structural
    equality within a process.  A new tables object — a grammar or
    query change — therefore starts from an empty (or store-warmed)
    memo.
    """
    tid = id(tables)
    with _registry_lock:
        mt = _registry.get(tid)
        if mt is not None and mt.tables is tables:
            _registry.move_to_end(tid)
            return mt
    mt = MemoTable(
        tables,
        capacity=_DEFAULT_CAPACITY,
        min_span=_DEFAULT_MIN_SPAN,
        max_span=_DEFAULT_MAX_SPAN,
    )
    store = get_artifact_store()
    if store is not None:
        _load_memo(mt, store)
    with _registry_lock:
        cur = _registry.get(tid)
        if cur is not None and cur.tables is tables:
            return cur  # lost the publication race; keep the first
        _registry[tid] = mt
        while len(_registry) > _REGISTRY_MAX:
            _registry.popitem(last=False)
    return mt


def clear_memo_tables() -> None:
    """Drop every registered memo table (tests / operator reset)."""
    with _registry_lock:
        _registry.clear()


def memo_info() -> dict[str, int]:
    """Aggregate memo statistics across all registered tables."""
    with _registry_lock:
        memos = list(_registry.values())
    out = {
        "tables": len(memos),
        "entries": 0,
        "sequences": 0,
        "hits": 0,
        "misses": 0,
        "rejects": 0,
        "evictions": 0,
        "capacity": _DEFAULT_CAPACITY,
    }
    for mt in memos:
        s = mt.stats()
        out["entries"] += s["entries"]
        out["sequences"] += s["sequences"]
        out["hits"] += s["hits"]
        out["misses"] += s["misses"]
        out["rejects"] += s["rejects"]
        out["evictions"] += s["evictions"]
    return out


# ---------------------------------------------------------------------------
# persistence (artifact store, schema kind "subseq")
# ---------------------------------------------------------------------------


def _load_memo(mt: MemoTable, store) -> bool:
    """Warm a fresh memo table from the store; any defect is a miss."""
    from ..store import codec

    try:
        skey = mt.store_key()
    except Exception:  # pragma: no cover - tables must be encodable
        return False
    payload = store.get("subseq", skey)
    if payload is None:
        return False
    try:
        seqs, entries = codec.decode_memo_table(payload)
    except codec.CodecError as exc:
        store.invalidate("subseq", skey, f"decode:{exc}")
        return False
    mt.adopt(seqs, entries)
    mt.dirty = False
    return True


def maybe_persist_memo(tables: KernelTables) -> bool:
    """Write the tables' memo through to the artifact store if dirty.

    Called by the pipeline after a run; a no-op without an installed
    store, an unregistered tables object, or a clean memo.
    """
    store = get_artifact_store()
    if store is None:
        return False
    with _registry_lock:
        mt = _registry.get(id(tables))
        if mt is None or mt.tables is not tables:
            return False
    if not mt.dirty:
        return False
    from ..store import codec

    seqs, entries = mt.snapshot()
    store.put("subseq", mt.store_key(), codec.encode_memo_table(seqs, entries))
    mt.dirty = False
    return True
