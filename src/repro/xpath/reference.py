"""Reference XPath evaluator over an in-memory document tree.

This is the *pre-parsing* strategy the paper contrasts with on-the-fly
transducers (Section 2.1): parse the whole document into a tree, then
answer queries by traversing it.  In this repository it serves three
roles:

* a **correctness oracle** — it implements the full fragment semantics
  (including reverse axes and predicates) directly, with none of the
  rewriting machinery, so integration and property tests can compare
  every streaming engine against it;
* the **pre-parse baseline** for the motivation benchmarks (memory
  footprint and locality arguments of Section 2.1);
* a pedagogical executable specification of the query semantics.

Matches are reported as the byte offsets of the matched elements' start
tags — the same identity every streaming engine uses — so result sets
are directly comparable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..xmlstream.tokens import Token
from .ast import (
    Axis,
    Path,
    PredAnd,
    PredCompare,
    PredNot,
    PredOr,
    PredPath,
    Predicate,
    Step,
    WILDCARD,
)
from .parser import parse_xpath

__all__ = ["Element", "Document", "build_document", "evaluate", "evaluate_offsets"]


@dataclass(eq=False, slots=True)
class Element:
    """One element node of the parsed tree."""

    tag: str
    offset: int
    parent: "Element | None" = None
    children: list["Element"] = field(default_factory=list)
    text_parts: list[str] = field(default_factory=list)
    end_offset: int = -1

    @property
    def text(self) -> str:
        """Concatenated direct character data of the element."""
        return "".join(self.text_parts)

    def descendants(self) -> Iterable["Element"]:
        """Proper descendants in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors(self) -> Iterable["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element(<{self.tag}>@{self.offset})"


@dataclass(slots=True)
class Document:
    """A parsed document: a virtual document node above the root element."""

    root: Element

    def all_elements(self) -> list[Element]:
        return [self.root, *self.root.descendants()]


def build_document(tokens: Iterable[Token]) -> Document:
    """Parse a token stream into a :class:`Document` tree."""
    root: Element | None = None
    stack: list[Element] = []
    for tok in tokens:
        if tok.is_start:
            node = Element(tok.name, tok.offset, parent=stack[-1] if stack else None)
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise ValueError("multiple document elements")
            stack.append(node)
        elif tok.is_end:
            if not stack or stack[-1].tag != tok.name:
                raise ValueError(f"mismatched end tag </{tok.name}> at offset {tok.offset}")
            stack[-1].end_offset = tok.offset
            stack.pop()
        else:
            if not stack:
                raise ValueError("character data outside the document element")
            stack[-1].text_parts.append(tok.name)
    if root is None or stack:
        raise ValueError("document is empty or has unclosed elements")
    return Document(root)


def evaluate(doc: Document, query: str | Path) -> list[Element]:
    """Evaluate ``query`` over ``doc``; matches in document order."""
    path = parse_xpath(query) if isinstance(query, str) else query
    result = _eval_steps(doc, path.steps, None)
    return sorted(result, key=lambda e: e.offset)


def evaluate_offsets(doc: Document, query: str | Path) -> list[int]:
    """Start-tag offsets of the matches (the cross-engine result format)."""
    return [e.offset for e in evaluate(doc, query)]


def _eval_steps(
    doc: Document, steps: tuple[Step, ...], context: Element | None
) -> set[Element]:
    """Evaluate a step chain.

    ``context`` is ``None`` for an absolute path (the virtual document
    node) and an element for relative (predicate) paths.
    """
    current: set[Element] = {context} if context is not None else set()
    at_document_node = context is None
    for step in steps:
        nxt: set[Element] = set()
        if at_document_node:
            # axis application from the virtual document node
            if step.axis == Axis.CHILD:
                candidates: Iterable[Element] = [doc.root]
            elif step.axis == Axis.DESCENDANT:
                candidates = doc.all_elements()
            else:
                candidates = []
            nxt.update(c for c in candidates if _name_matches(step.name, c.tag))
            at_document_node = False
        else:
            for node in current:
                nxt.update(_apply_axis(node, step))
        if step.predicates:
            nxt = {n for n in nxt if all(_eval_pred(doc, p, n) for p in step.predicates)}
        current = nxt
        if not current:
            break
    return current


def _apply_axis(node: Element, step: Step) -> Iterable[Element]:
    if step.axis == Axis.CHILD:
        candidates: Iterable[Element] = node.children
    elif step.axis == Axis.DESCENDANT:
        candidates = node.descendants()
    elif step.axis == Axis.PARENT:
        candidates = [node.parent] if node.parent is not None else []
    elif step.axis == Axis.ANCESTOR:
        candidates = node.ancestors()
    elif step.axis == Axis.SELF:
        candidates = [node]
    else:  # pragma: no cover - exhaustive
        raise ValueError(f"unknown axis {step.axis}")
    return (c for c in candidates if _name_matches(step.name, c.tag))


def _eval_pred(doc: Document, pred: Predicate, node: Element) -> bool:
    if isinstance(pred, PredAnd):
        return all(_eval_pred(doc, p, node) for p in pred.parts)
    if isinstance(pred, PredOr):
        return any(_eval_pred(doc, p, node) for p in pred.parts)
    if isinstance(pred, PredNot):
        return not _eval_pred(doc, pred.part, node)
    if isinstance(pred, PredPath):
        if pred.path.absolute:
            return bool(_eval_steps(doc, pred.path.steps, None))
        return bool(_eval_steps(doc, pred.path.steps, node))
    if isinstance(pred, PredCompare):
        targets = _eval_steps(doc, pred.path.steps, None if pred.path.absolute else node)
        if pred.op == "=":
            return any(t.text == pred.literal for t in targets)
        return any(t.text != pred.literal for t in targets)
    raise TypeError(f"unknown predicate {pred!r}")  # pragma: no cover


def _name_matches(test: str, tag: str) -> bool:
    return test == WILDCARD or test == tag
