"""Dense kernel tables — the query automaton and feasible-path table
compiled into flat integer arrays.

The object-graph hot path (``QueryAutomaton.step`` dict lookups,
``FeasibleTable`` frozenset membership) is what the dense chunk kernel
(:mod:`repro.core.kernel`) replaces.  This module performs the one-time
compilation:

* **tag interning** — every tag the automaton or the feasibility table
  distinguishes gets a small integer *symbol id* (sorted order, so ids
  are deterministic and stable across compilations); every other tag
  maps to the reserved ``other_sym``, mirroring the automaton's OTHER
  convention.  A document tag is interned once per token with a single
  dict lookup;
* **transitions** — one ``array('i')`` of shape ``n_states × n_symbols``
  (row-major by state), so the DFA move is one index computation;
* **accept/close rows** — per-state tuples of sub-query ids plus a
  ``bytes`` flag vector each, so the common non-accepting state costs
  one byte test;
* **feasibility rows** — per-symbol ``bytes`` bitmaps over states (for
  membership checks during elimination) *and* pre-sorted tuples (for
  path enumeration at chunk starts and divergences).  A row is ``None``
  when the table answers "unknown" for that symbol — exactly the
  ``FeasibleTable`` lookup contract (a missing tag is provably
  infeasible under a complete grammar, unknown under a partial one).

Compiled tables are immutable and picklable: the parallel pipeline
ships them to process-pool workers once per worker inside the shared
context.

A bounded **compile cache** keyed on the *structural content* of
``(automaton, feasible table, anchor set)`` — i.e. on (query, grammar)
rather than object identity — makes repeated queries skip table
construction entirely: re-running an engine, or constructing a new
engine over the same query/grammar pair, reuses the compiled arrays.
Learning new grammar (speculative mode) produces a structurally
different table and therefore a cache miss, which is the invalidation
path (pinned by ``tests/test_table_compile.py``).
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.journal import NULL_JOURNAL
from .automaton import QueryAutomaton

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports xpath)
    from ..core.inference import FeasibleTable

__all__ = [
    "KernelTables",
    "compile_tables",
    "compiled_tables",
    "compile_cache_info",
    "clear_compile_cache",
    "set_artifact_store",
    "get_artifact_store",
]

#: bounded LRU size for the structural compile cache
_CACHE_MAX = 64


@dataclass(slots=True, frozen=True)
class KernelTables:
    """The dense, flat-array form of one ``(automaton, table)`` pair.

    All rows indexed by *symbol id* have length ``n_symbols`` (the
    interned tags plus the trailing OTHER symbol at ``other_sym``).
    ``*_rows`` entries are per-state membership bitmaps (``bytes`` of
    length ``n_states``), ``*_sets`` entries the same states as sorted
    tuples; both are ``None`` where the feasibility answer is
    "unknown".
    """

    n_states: int
    n_symbols: int
    initial: int
    #: tag name → symbol id (use ``sym_ids.get(tag, other_sym)``)
    sym_ids: dict[str, int]
    other_sym: int
    #: DFA moves, row-major by state: ``trans[state * n_symbols + sym]``
    trans: array
    accepts: tuple[tuple[int, ...], ...]
    accept_flags: bytes
    close_accepts: tuple[tuple[int, ...], ...]
    close_flags: bytes
    start_rows: tuple[bytes | None, ...]
    start_sets: tuple[tuple[int, ...] | None, ...]
    end_rows: tuple[bytes | None, ...]
    end_sets: tuple[tuple[int, ...] | None, ...]
    #: scenario-1 row for a chunk whose first token is text
    text_set: tuple[int, ...] | None
    all_states: tuple[int, ...]
    #: whether a feasibility table was compiled in at all
    has_table: bool
    #: table completeness (meaningless when ``has_table`` is False)
    complete: bool

    def sym_of(self, tag: str) -> int:
        """Interned symbol id of ``tag`` (OTHER for unknown tags)."""
        return self.sym_ids.get(tag, self.other_sym)


def compile_tables(
    automaton: QueryAutomaton,
    table: "FeasibleTable | None" = None,
    anchor_sids: frozenset[int] = frozenset(),
) -> KernelTables:
    """Compile ``automaton`` (and optionally ``table``) into dense arrays.

    ``table=None`` compiles transition/accept structure only — the
    baseline (PP-Transducer) configuration, where every feasibility row
    answers "unknown".
    """
    n = automaton.n_states
    tags = set(automaton.alphabet)
    if table is not None:
        tags |= set(table.before_start)
        tags |= set(table.before_end)
    symbols = sorted(tags)
    sym_ids = {tag: i for i, tag in enumerate(symbols)}
    other_sym = len(symbols)
    n_symbols = other_sym + 1

    trans = array("i", bytes(4 * n * n_symbols))
    for q in range(n):
        base = q * n_symbols
        row = automaton.transitions[q]
        oth = automaton.other[q]
        for tag, s in sym_ids.items():
            trans[base + s] = row.get(tag, oth)
        trans[base + other_sym] = oth

    accepts = tuple(tuple(a) for a in automaton.accepts)
    accept_flags = bytes(1 if a else 0 for a in accepts)
    close_accepts = tuple(
        tuple(sid for sid in a if sid in anchor_sids) for a in accepts
    )
    close_flags = bytes(1 if a else 0 for a in close_accepts)

    def feas_rows(lookup: dict[str, frozenset[int]], complete: bool):
        rows: list[bytes | None] = []
        sets: list[tuple[int, ...] | None] = []
        for tag in symbols:
            feas = lookup.get(tag)
            if feas is None:
                feas = frozenset() if complete else None
            if feas is None:
                rows.append(None)
                sets.append(None)
            else:
                bitmap = bytearray(n)
                for s in feas:
                    bitmap[s] = 1
                rows.append(bytes(bitmap))
                sets.append(tuple(sorted(feas)))
        # the OTHER symbol: a tag neither queried nor declared
        if complete:
            rows.append(bytes(n))
            sets.append(())
        else:
            rows.append(None)
            sets.append(None)
        return tuple(rows), tuple(sets)

    if table is not None:
        start_rows, start_sets = feas_rows(table.before_start, table.complete)
        end_rows, end_sets = feas_rows(table.before_end, table.complete)
        text_set = tuple(sorted(table.text_states)) if table.complete else None
        has_table, complete = True, table.complete
    else:
        start_rows = end_rows = (None,) * n_symbols
        start_sets = end_sets = (None,) * n_symbols
        text_set = None
        has_table, complete = False, False

    return KernelTables(
        n_states=n,
        n_symbols=n_symbols,
        initial=automaton.initial,
        sym_ids=sym_ids,
        other_sym=other_sym,
        trans=trans,
        accepts=accepts,
        accept_flags=accept_flags,
        close_accepts=close_accepts,
        close_flags=close_flags,
        start_rows=start_rows,
        start_sets=start_sets,
        end_rows=end_rows,
        end_sets=end_sets,
        text_set=text_set,
        all_states=tuple(range(n)),
        has_table=has_table,
        complete=complete,
    )


# ---------------------------------------------------------------------------
# structural compile cache
# ---------------------------------------------------------------------------

_cache: OrderedDict[tuple, KernelTables] = OrderedDict()
_hits = 0
_misses = 0
_compiles = 0
#: guards every _cache/_hits/_misses access — the query service
#: compiles from multiple scheduler worker threads, and OrderedDict
#: move_to_end/popitem during a concurrent lookup corrupts the dict
_cache_lock = threading.Lock()

#: optional persistent tier under the in-memory cache (see
#: :mod:`repro.store`): an in-memory miss consults the store before
#: compiling, and a genuine compile writes through.  Typed loosely to
#: keep this module import-free of :mod:`repro.store` at load time.
_store = None


def set_artifact_store(store) -> None:
    """Install (or with ``None`` remove) the persistent artifact store.

    Process-global, like the cache it backs: every ``compiled_tables``
    call in the process — service scheduler threads, CLI one-shots,
    benchmark drivers — shares the same persistent tier.
    """
    global _store
    with _cache_lock:
        _store = store


def get_artifact_store():
    """The installed persistent store, or ``None``."""
    with _cache_lock:
        return _store


def _store_key(key: tuple) -> str:
    """The structural cache key, hashed for the persistent store.

    ``key`` is a nest of str/int/bool/None tuples, so its ``repr`` is
    deterministic across processes and interpreter runs — exactly the
    property the in-memory key relies on for equality, lifted to a
    stable content hash.
    """
    from hashlib import sha256

    return sha256(repr(key).encode("utf-8")).hexdigest()


def _store_get(store, skey: str) -> "KernelTables | None":
    """Decode a stored compilation; any defect is a clean miss."""
    from ..store import codec

    payload = store.get("tables", skey)
    if payload is None:
        return None
    try:
        return codec.decode_kernel_tables(payload)
    except codec.CodecError as exc:
        store.invalidate("tables", skey, f"decode:{exc}")
        return None


def _automaton_key(a: QueryAutomaton) -> tuple:
    return (
        a.initial,
        a.dead,
        tuple(a.other),
        tuple(tuple(sorted(row.items())) for row in a.transitions),
        tuple(tuple(acc) for acc in a.accepts),
        tuple(sorted(a.alphabet)),
    )


def _table_key(t: "FeasibleTable | None") -> tuple | None:
    if t is None:
        return None
    return (
        t.complete,
        tuple(sorted((k, tuple(sorted(v))) for k, v in t.before_start.items())),
        tuple(sorted((k, tuple(sorted(v))) for k, v in t.before_end.items())),
        tuple(sorted(t.text_states)),
    )


def compiled_tables(
    automaton: QueryAutomaton,
    table: "FeasibleTable | None" = None,
    anchor_sids: frozenset[int] = frozenset(),
    journal=NULL_JOURNAL,
) -> KernelTables:
    """Cached :func:`compile_tables` keyed on structural content.

    Two calls with *equal* (query automaton, feasible table, anchor
    set) share one compiled object, regardless of object identity —
    this is the "(query, grammar)" compile cache: building the key is
    O(automaton + table), far below compilation (which also walks the
    full transition structure but allocates and fills every dense row).
    ``journal`` receives a ``cache_hit``/``cache_miss`` event per lookup.

    Thread-safe: lookups and LRU mutation are serialised by a lock
    (the query service compiles from concurrent scheduler threads);
    compilation itself runs outside the lock, so two threads missing
    on the same key may both compile — the duplicate insert is
    harmless (equal content) and cheaper than holding the lock across
    a full table compilation.
    """
    global _hits, _misses, _compiles
    key = (
        _automaton_key(automaton),
        _table_key(table),
        tuple(sorted(anchor_sids)),
    )
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            _cache.move_to_end(key)
            size = len(_cache)
        else:
            _misses += 1
            size = len(_cache)
        store = _store
    if cached is not None:
        if journal.enabled:
            journal.record("cache_hit", size=size)
        return cached
    if journal.enabled:
        journal.record("cache_miss", size=size)
    # persistent tier: a warm store turns the miss into a decode
    # (hit/miss/invalid accounting lives in the store itself)
    tables = None
    skey = ""
    if store is not None:
        skey = _store_key(key)
        tables = _store_get(store, skey)
    if tables is None:
        tables = compile_tables(automaton, table, anchor_sids)
        with _cache_lock:
            _compiles += 1
        if store is not None:
            from ..store import codec

            store.put("tables", skey, codec.encode_kernel_tables(tables))
    with _cache_lock:
        _cache[key] = tables
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAX:
            _cache.popitem(last=False)
    return tables


def compile_cache_info() -> dict:
    """Cache statistics: hits/misses/size plus ``compiles`` — the number
    of genuine table compilations (a warm artifact store turns misses
    into decodes, so ``compiles`` stays at zero on a warm start).

    The ``memo`` key aggregates the structural-repetition memo layer
    (:mod:`repro.xpath.subseq`) that rides on the compiled tables:
    per-process entry/sequence totals, hit/miss/reject counters and the
    configured capacity.
    """
    with _cache_lock:
        info: dict = {
            "hits": _hits,
            "misses": _misses,
            "size": len(_cache),
            "compiles": _compiles,
        }
    from .subseq import memo_info

    info["memo"] = memo_info()
    return info


def clear_compile_cache() -> None:
    """Drop all cached tables and reset the hit/miss counters."""
    global _hits, _misses, _compiles
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0
        _compiles = 0
