"""XPath abstract syntax for the fragment the paper evaluates.

The paper's query corpus (XPathMark A-type queries plus two B-type
queries, Table 4) uses:

* absolute location paths with ``child`` (``/``) and
  ``descendant-or-self`` (``//``) axes,
* the ``*`` name wildcard,
* existence predicates ``[p]`` over relative paths, combined with
  ``and`` / ``or`` (and we also support ``not(...)``),
* ``parent::`` / ``ancestor::`` axes inside predicates or as rewritable
  main-path steps (e.g. ``//k/ancestor::li/t/k`` — query XM3).

Reverse axes and predicates are *not* executed directly by the
transducers: :mod:`repro.xpath.rewrite` normalises every query into a
set of forward-only sub-queries plus a filter specification, exactly as
the paper describes ("the queries are translated into subqueries or
rewritten, such that they can be merged into a single pushdown
transducer", Section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "Axis",
    "WILDCARD",
    "Step",
    "Path",
    "PredCompare",
    "Predicate",
    "PredPath",
    "PredAnd",
    "PredOr",
    "PredNot",
    "XPathError",
]

#: the name test that matches any element
WILDCARD = "*"


class XPathError(ValueError):
    """Raised for queries outside the supported fragment."""


class Axis(enum.Enum):
    """Navigation axes of the supported fragment."""

    CHILD = "child"
    DESCENDANT = "descendant"  # normalised descendant-or-self::node()/child
    PARENT = "parent"
    ANCESTOR = "ancestor"
    SELF = "self"

    @property
    def is_forward(self) -> bool:
        return self in (Axis.CHILD, Axis.DESCENDANT, Axis.SELF)

    @property
    def is_reverse(self) -> bool:
        return self in (Axis.PARENT, Axis.ANCESTOR)


@dataclass(frozen=True, slots=True)
class Predicate:
    """Base class for predicate expressions."""


@dataclass(frozen=True, slots=True)
class PredPath(Predicate):
    """Existence test: the relative ``path`` has at least one match."""

    path: "Path"


@dataclass(frozen=True, slots=True)
class PredCompare(Predicate):
    """Value test: some match of ``path`` has text equal to ``literal``.

    Both ``=`` and ``!=`` are existential, per XPath semantics:
    ``[a != 'x']`` holds iff *some* ``a`` child's value differs from
    ``'x'`` (use ``not(a = 'x')`` for "no child equals").
    """

    path: "Path"
    op: str  # '=' or '!='
    literal: str


@dataclass(frozen=True, slots=True)
class PredAnd(Predicate):
    """Conjunction of predicate expressions."""

    parts: tuple[Predicate, ...]


@dataclass(frozen=True, slots=True)
class PredOr(Predicate):
    """Disjunction of predicate expressions."""

    parts: tuple[Predicate, ...]


@dataclass(frozen=True, slots=True)
class PredNot(Predicate):
    """Negation of a predicate expression."""

    part: Predicate


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: ``axis::nametest[pred]*``.

    ``name`` is an element name or :data:`WILDCARD`.
    """

    axis: Axis
    name: str
    predicates: tuple[Predicate, ...] = ()

    def with_predicates(self, preds: tuple[Predicate, ...]) -> "Step":
        return Step(self.axis, self.name, preds)

    def strip_predicates(self) -> "Step":
        return Step(self.axis, self.name) if self.predicates else self

    def __str__(self) -> str:
        if self.axis == Axis.CHILD:
            prefix = ""
        elif self.axis == Axis.DESCENDANT:
            prefix = ""  # rendered by Path as '//'
        else:
            prefix = f"{self.axis.value}::"
        preds = "".join(f"[{_pred_str(p)}]" for p in self.predicates)
        return f"{prefix}{self.name}{preds}"


@dataclass(frozen=True, slots=True)
class Path:
    """A location path: sequence of steps, absolute or relative.

    A relative path (``absolute=False``) only appears inside
    predicates, where it is evaluated relative to the anchor element.
    """

    steps: tuple[Step, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise XPathError("a path needs at least one step")

    @property
    def is_forward_only(self) -> bool:
        """True when every step uses a forward axis and has no predicates.

        Forward-only paths are exactly what the query automaton can
        compile directly.
        """
        return all(s.axis.is_forward and not s.predicates for s in self.steps)

    def strip(self) -> "Path":
        """The same path with all predicates removed."""
        return Path(tuple(s.strip_predicates() for s in self.steps), self.absolute)

    def __str__(self) -> str:
        out: list[str] = []
        for i, step in enumerate(self.steps):
            if step.axis == Axis.DESCENDANT:
                out.append("//")
            elif i > 0 or self.absolute:
                out.append("/")
            out.append(str(step))
        return "".join(out)


def _pred_str(p: Predicate) -> str:
    if isinstance(p, PredCompare):
        return f"{p.path} {p.op} '{p.literal}'"
    if isinstance(p, PredPath):
        return str(p.path)
    if isinstance(p, PredAnd):
        return " and ".join(_pred_str(x) for x in p.parts)
    if isinstance(p, PredOr):
        return " or ".join(_pred_str(x) for x in p.parts)
    if isinstance(p, PredNot):
        return f"not({_pred_str(p.part)})"
    raise TypeError(f"unknown predicate {p!r}")  # pragma: no cover
