"""Match events — the output-tape alphabet Δ of the transducers.

Every transducer variant (sequential, PP-Transducer, GAP, speculative
GAP) writes the same event vocabulary to its output tape:

* ``HIT(sid, offset, depth)`` — sub-query ``sid`` matched the element
  whose start tag is at ``offset``, nested at element ``depth``;
* ``CLOSE(sid, offset, depth)`` — the element previously opened as an
  *anchor* match of ``sid`` just closed; ``offset`` is the end tag's
  offset.

HIT events of anchor sub-queries open an interval that the matching
CLOSE event terminates; the filter phase pairs them back up (per sid,
with a stack — element spans of one sub-query always nest properly or
are disjoint).  Events are totally ordered by their token offset, which
is global across chunks, so the join phase simply concatenates the
per-chunk output tapes.

Depths make predicate joins *structural*: a child-axis predicate path
of length L relates a hit at depth d to the anchor instance at exactly
depth d−L on its ancestor chain, so self-nesting anchor elements are
resolved correctly.  A worker processing a chunk cannot know absolute
depths (they depend on the unknown incoming stack), so it records
depths relative to the chunk start — possibly negative after underflow
pops — and the join phase, which carries the concrete stack, rebases
each chunk's events by the incoming stack height
(:func:`MatchEvent.rebased`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "MatchEvent", "hit", "close"]


class EventKind(enum.IntEnum):
    HIT = 0
    CLOSE = 1


@dataclass(frozen=True, slots=True)
class MatchEvent:
    """One entry on a transducer's output tape."""

    kind: EventKind
    sid: int
    offset: int
    depth: int = 0

    def rebased(self, base: int) -> "MatchEvent":
        """This event with ``base`` added to its (chunk-local) depth."""
        if base == 0:
            return self
        return MatchEvent(self.kind, self.sid, self.offset, self.depth + base)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        word = "hit" if self.kind == EventKind.HIT else "close"
        return f"{word}(sub={self.sid}, @{self.offset}, d={self.depth})"


def hit(sid: int, offset: int, depth: int = 0) -> MatchEvent:
    return MatchEvent(EventKind.HIT, sid, offset, depth)


def close(sid: int, offset: int, depth: int = 0) -> MatchEvent:
    return MatchEvent(EventKind.CLOSE, sid, offset, depth)
