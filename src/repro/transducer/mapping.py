"""Mappings (Definition 3) and the join phase — segmented representation.

A chunk processed without its true context yields mappings
``m = (q_s, z_s, q_f, z_f, o)``.  Materialising one mapping per
``(start state × pop values…)`` combination explodes combinatorially
with the number of divergences; the double-tree representation of
Ogden et al. avoids that, and this module captures the same insight
directly:

    after an underflow pop the transducer's configuration is exactly
    (popped value, empty local stack) — independent of everything that
    happened before the pop.

A chunk's execution therefore factorises into **segments** separated by
its divergences.  Segment 0 is keyed by the assumed starting state;
segment *i* (>0) is keyed by the value assumed popped at divergence
*i*.  Each key maps to the events produced during that segment, and
the final segment's entries also carry the finishing state and pushed
stack.  Storage is linear in (#segments × #keys); the join
reconstructs any concrete mapping by indexing segment *i* with the
*actual* incoming stack's *i*-th-from-top value:

    events(q_s, v_1.. v_k) = E_0[q_s] ++ E_1[v_1] ++ … ++ E_k[v_k]

Speculative GAP adds **restart cohorts**: independent segment chains
begun mid-chunk at a path-revival point (Section 5.2).  A cohort whose
lookup fails mid-chain still contributes its prefix — the join resumes
sequential reprocessing *from the failed divergence*, which is what
makes reprocessing selective.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..obs.journal import NULL_JOURNAL
from ..obs.logsetup import get_logger
from ..xpath.events import MatchEvent
from .counters import WorkCounters

logger = get_logger("transducer.join")

__all__ = [
    "SegmentEntry",
    "Segment",
    "Cohort",
    "ChunkResult",
    "JoinError",
    "join_results",
]


@dataclass(slots=True)
class SegmentEntry:
    """One key's outcome within a segment.

    ``final_state``/``pushed`` are only meaningful in a chunk's last
    segment (elsewhere the segment ends in a divergence, whose outcome
    is the assumed pop of the *next* segment).
    """

    events: list[MatchEvent]
    final_state: int = -1
    pushed: tuple[int, ...] = ()


@dataclass(slots=True)
class Segment:
    """Execution between two synchronisation points of one cohort.

    ``entries`` maps the segment key — assumed start state for segment
    0, assumed popped value otherwise — to its outcome.  ``end_tag``/
    ``end_offset`` identify the underflowing end tag that closed the
    segment (``None``/chunk end for the final segment).  A key absent
    from ``entries`` was either never enumerated or eliminated as
    infeasible.
    """

    entries: dict[int, SegmentEntry] = field(default_factory=dict)
    end_tag: str | None = None
    end_offset: int = -1


@dataclass(slots=True)
class Cohort:
    """One chain of segments: the main chain or a speculative restart.

    The main cohort has ``restart_offset == chunk.begin`` and
    ``restart_index == -1``; restart cohorts record the token index and
    byte offset where execution was revived with an empty local stack.
    """

    segments: list[Segment] = field(default_factory=list)
    restart_index: int = -1
    restart_offset: int = -1
    #: chunk-local element depth at the cohort's entry point (0 for the
    #: main cohort); the join rebases event depths by
    #: ``len(concrete stack at entry) - restart_depth``
    restart_depth: int = 0

    @property
    def is_restart(self) -> bool:
        return self.restart_index >= 0


@dataclass(slots=True)
class ChunkResult:
    """All cohorts of one chunk, plus its work counters.

    ``spans`` carries any tracing spans the worker recorded while
    processing the chunk (:mod:`repro.obs.tracer`); ``journal`` carries
    any flight-recorder events (:mod:`repro.obs.journal`); ``samples``
    carries any collapsed-stack profiler samples
    (:meth:`repro.obs.sampler.SampleProfile.to_dict`).  Because the
    whole result is pickled back from process-pool workers, all three
    survive the process boundary and get merged into the coordinating
    tracer/journal/profile — the journal strictly in chunk order, so
    the merged event stream is deterministic across backends.
    """

    index: int
    begin: int
    end: int
    cohorts: list[Cohort] = field(default_factory=list)
    counters: WorkCounters = field(default_factory=WorkCounters)
    spans: list = field(default_factory=list)
    journal: list = field(default_factory=list)
    samples: dict = field(default_factory=dict)

    @property
    def main(self) -> Cohort | None:
        for c in self.cohorts:
            if not c.is_restart:
                return c
        return None

    def restarts(self) -> list[Cohort]:
        out = [c for c in self.cohorts if c.is_restart]
        out.sort(key=lambda c: c.restart_offset)
        return out

    def mapping_entries(self) -> int:
        return sum(len(s.entries) for c in self.cohorts for s in c.segments)


class JoinError(RuntimeError):
    """Raised when joining fails irrecoverably (engine invariant broken)."""


@dataclass(slots=True)
class _CohortOutcome:
    """Result of consuming one cohort chain against a concrete context."""

    complete: bool
    events: list[MatchEvent]
    # on completion:
    state: int = -1
    pops: int = 0
    pushed: tuple[int, ...] = ()
    # on partial failure: where sequential reprocessing must resume
    resume_offset: int = -1
    resume_state: int = -1
    resume_pops: int = 0
    #: the resume position points AT the already-consumed end token of
    #: the failed divergence; reprocessing must skip it
    resume_skip_end: bool = False


def _consume(cohort: Cohort, state: int, stack: Sequence[int]) -> _CohortOutcome:
    """Walk a cohort's segments with the concrete incoming context.

    Event depths are rebased from chunk-local to absolute using the
    concrete stack height at the cohort's entry point.
    """
    segments = cohort.segments
    if not segments:
        return _CohortOutcome(False, [], resume_offset=cohort.restart_offset,
                              resume_state=state, resume_pops=0)
    base = len(stack) - cohort.restart_depth
    events: list[MatchEvent] = []
    entry = segments[0].entries.get(state)
    if entry is None:
        return _CohortOutcome(False, [], resume_offset=cohort.restart_offset,
                              resume_state=state, resume_pops=0)
    events.extend(ev.rebased(base) for ev in entry.events)
    pops = 0
    n = len(stack)
    for prev, seg in zip(segments, segments[1:]):
        # divergence at prev.end: the next value of the incoming stack pops
        if pops >= n:
            # the chunk pops deeper than the real incoming stack — only
            # possible for malformed input; discard the prefix and let
            # the caller reprocess from the cohort's start (defensive)
            return _CohortOutcome(False, [], resume_offset=cohort.restart_offset,
                                  resume_state=-2, resume_pops=0)
        value = stack[n - 1 - pops]
        pops += 1
        entry = seg.entries.get(value)
        if entry is None:
            # the true popped value was eliminated/not enumerated: resume
            # at the underflowing end token (already consumed: the pop
            # itself is the known value) and skip it when reprocessing
            return _CohortOutcome(False, events, resume_offset=prev.end_offset,
                                  resume_state=value, resume_pops=pops,
                                  resume_skip_end=True)
        events.extend(ev.rebased(base) for ev in entry.events)
    return _CohortOutcome(True, events, state=entry.final_state, pops=pops,
                          pushed=entry.pushed)


#: reprocess(begin_offset, end_offset, state, stack, skip_end_at_begin)
#:     -> (state, stack, events, n_tokens)
#: ``skip_end_at_begin`` asks the reprocessor to drop one leading end
#: token at exactly ``begin_offset`` (a divergence the join already
#: resolved).
ReprocessFn = Callable[
    [int, int, int, list[int], bool],
    tuple[int, list[int], list[MatchEvent], int],
]


def join_results(
    first: tuple[int, list[int], list[MatchEvent]],
    chunks: list[ChunkResult],
    reprocess: ReprocessFn,
    counters: WorkCounters,
    strict: bool = False,
    journal=NULL_JOURNAL,
) -> tuple[int, list[int], list[MatchEvent]]:
    """Join phase: link chunk mappings in document order.

    ``first`` is the concrete starting configuration (state, stack,
    events) before the first chunk in ``chunks``; chunk 0 runs from the
    known initial configuration so its (single-key) lookup always
    succeeds.  ``strict`` (non-speculative mode) turns any failed
    lookup into a :class:`JoinError` — a complete grammar's inference
    must never exclude the true path.

    Returns the final configuration and the ordered event list.
    """
    state, stack, events = first
    for chunk in chunks:
        counters.join_steps += 1
        main = chunk.main
        outcome = _consume(main, state, stack) if main is not None else None
        if outcome is not None and outcome.complete:
            events.extend(outcome.events)
            if outcome.pops:
                del stack[len(stack) - outcome.pops :]
            stack.extend(outcome.pushed)
            state = outcome.state
            continue

        if strict:
            raise JoinError(
                f"no mapping matched at chunk {chunk.index} "
                f"(state={state}, stack depth={len(stack)}) in non-speculative mode"
            )
        counters.misspeculations += 1
        if journal.enabled:
            journal.record("misspeculation", chunk=chunk.index, offset=chunk.begin,
                           state=state, stack_depth=len(stack))
        if logger.isEnabledFor(logging.WARNING):
            logger.warning(
                "misspeculation at chunk %d [%d, %d) (state=%d, stack depth=%d)",
                chunk.index, chunk.begin, chunk.end, state, len(stack),
            )
        state, stack = _recover(chunk, outcome, state, stack, events, reprocess, counters)
    return state, stack, events


def _recover(
    chunk: ChunkResult,
    main_outcome: _CohortOutcome | None,
    state: int,
    stack: list[int],
    events: list[MatchEvent],
    reprocess: ReprocessFn,
    counters: WorkCounters,
) -> tuple[int, list[int]]:
    """Selective reprocessing after a misspeculated chunk.

    Uses whatever prefix the main cohort validated, then alternates
    sequential reprocessing with attempts to re-enter restart cohorts,
    earliest first.  Worst case reprocesses the remaining suffix of the
    chunk — never more.
    """
    # 1. bank the main cohort's validated prefix
    skip_end = False
    if main_outcome is not None and main_outcome.events:
        events.extend(main_outcome.events)
    if main_outcome is not None and main_outcome.resume_offset >= 0:
        pos = main_outcome.resume_offset
        skip_end = main_outcome.resume_skip_end
        if main_outcome.resume_pops:
            del stack[len(stack) - main_outcome.resume_pops :]
        if main_outcome.resume_state >= 0:
            cur_state = main_outcome.resume_state
        else:
            cur_state = state
    else:
        pos = chunk.begin
        cur_state = state
    cur_stack = stack

    # 2. walk forward, trying restart cohorts as we reach them
    for cohort in chunk.restarts():
        if cohort.restart_offset < pos:
            continue
        if cohort.restart_offset > pos:
            s, st, evs, n_tok = reprocess(
                pos, cohort.restart_offset, cur_state, cur_stack, skip_end
            )
            skip_end = False
            counters.reprocessed_tokens += n_tok
            events.extend(evs)
            cur_state, cur_stack = s, st
            pos = cohort.restart_offset
        outcome = _consume(cohort, cur_state, cur_stack)
        if outcome.complete:
            events.extend(outcome.events)
            if outcome.pops:
                del cur_stack[len(cur_stack) - outcome.pops :]
            cur_stack.extend(outcome.pushed)
            return outcome.state, cur_stack
        if outcome.resume_offset > pos:
            # partial credit: the cohort validated a prefix
            events.extend(outcome.events)
            if outcome.resume_pops:
                del cur_stack[len(cur_stack) - outcome.resume_pops :]
            if outcome.resume_state >= 0:
                cur_state = outcome.resume_state
            pos = outcome.resume_offset
            skip_end = outcome.resume_skip_end

    # 3. no cohort finished the chunk: reprocess the remaining suffix
    if pos < chunk.end or skip_end:
        s, st, evs, n_tok = reprocess(pos, chunk.end, cur_state, cur_stack, skip_end)
        counters.reprocessed_tokens += n_tok
        events.extend(evs)
        cur_state, cur_stack = s, st
    return cur_state, cur_stack
