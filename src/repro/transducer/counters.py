"""Work counters — the measured quantities behind the cost model.

Every transducer loop in this repository increments these counters as a
side effect of doing the *real* work.  They serve two purposes:

* they are the paper's profiling quantities (Table 5's starting-path
  counts, the number of data-structure switches, divergences, the
  reprocessed fraction of Table 6);
* they drive the :mod:`repro.parallel.simcluster` cost model, which
  converts per-worker work into simulated wall-clock time — the
  substitution this reproduction uses for the paper's 20-core Xeon
  (see DESIGN.md §2: CPython's GIL prevents demonstrating real
  multicore scaling of a byte-crunching loop, but the *work* each core
  would perform is exactly what these counters record).

All counts are plain integers and merge additively, so per-chunk
counters can be summed across workers or kept separate for the
max-over-workers critical-path computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["WorkCounters"]


@dataclass(slots=True)
class WorkCounters:
    """Additive work/event counters for one execution (chunk or run)."""

    #: bytes of raw input lexed
    bytes_lexed: int = 0
    #: tokens processed in single-path (plain stack) mode
    stack_tokens: int = 0
    #: tokens processed in multi-path (double-tree) mode
    tree_tokens: int = 0
    #: sum over tree-mode tokens of the number of live path groups
    #: (the path-maintenance work the paper's elimination attacks)
    tree_path_steps: int = 0
    #: number of runtime data-structure switches (tree <-> stack)
    switches: int = 0
    #: pop divergences encountered (underflow pops)
    divergences: int = 0
    #: path groups killed by feasibility checks (all three scenarios)
    paths_eliminated: int = 0
    #: path groups merged by convergence
    paths_converged: int = 0
    #: number of execution paths a chunk started with (summed; use
    #: together with `chunks` for the Table-5 average)
    starting_paths: int = 0
    #: chunks processed (1 for a single chunk's counters)
    chunks: int = 0
    #: chunks that hit at least one feasible-table miss and degraded to
    #: full enumeration (speculative mode with missing grammar parts)
    degraded_lookups: int = 0
    #: tokens re-executed sequentially after a misspeculation
    reprocessed_tokens: int = 0
    #: join-time misspeculations detected
    misspeculations: int = 0
    #: mapping entries (origins) at chunk completion, summed
    mapping_entries: int = 0
    #: join-phase linking steps
    join_steps: int = 0
    #: chunk attempts re-scheduled by the resilience layer
    retries: int = 0
    #: chunk attempts that exceeded the chunk timeout
    timeouts: int = 0
    #: chunks re-executed on the serial fallback after retries ran out
    fallbacks: int = 0

    def merge(self, other: "WorkCounters") -> None:
        """Add ``other`` into ``self`` (workers → run totals)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "WorkCounters":
        out = WorkCounters()
        out.merge(self)
        return out

    # -- derived quantities -------------------------------------------

    @property
    def total_tokens(self) -> int:
        return self.stack_tokens + self.tree_tokens

    @property
    def avg_starting_paths(self) -> float:
        """Table 5's metric: average starting paths per chunk."""
        return self.starting_paths / self.chunks if self.chunks else 0.0

    @property
    def avg_tree_paths(self) -> float:
        """Average number of live paths per tree-mode token."""
        return self.tree_path_steps / self.tree_tokens if self.tree_tokens else 0.0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
