"""The three-phase parallel pipeline: split → parallel → join.

This module glues the substrates together into the structure of
Section 2.3:

1. **split** — cut the document into tag-aligned chunks
   (:mod:`repro.xmlstream.chunking`);
2. **parallel** — run a :class:`~repro.transducer.runner.ChunkRunner`
   on every chunk through an execution backend; chunk 0 starts from
   the known initial configuration, the rest from whatever the policy
   allows;
3. **join** — link the chunk mappings in document order
   (:mod:`repro.transducer.mapping`), reprocessing misspeculated
   ranges with the sequential transducer.

With a :class:`~repro.transducer.policies.BaselinePolicy` this *is*
the PP-Transducer (Ogden et al., VLDB'13); with the GAP policies from
:mod:`repro.core` it is the GAP transducer.  The convenience wrapper
:func:`run_pp_transducer` instantiates the former.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, replace

from ..obs.journal import Journal, NULL_JOURNAL
from ..obs.tracer import NULL_TRACER, Tracer
from ..parallel.backend import Backend, SerialBackend
from ..parallel.faults import FaultPlane, NO_FAULTS, apply_faults, parse_fault_spec
from ..parallel.resilience import ResilienceReport, RetryPolicy, supervised_map
from ..xpath.automaton import QueryAutomaton
from ..xpath.events import MatchEvent
from ..xmlstream.chunking import Chunk, split_chunks
from ..xmlstream.lexer import lex_range
from .counters import WorkCounters
from .machine import run_sequential
from .mapping import ChunkResult, join_results
from .policies import BaselinePolicy, PathPolicy
from .runner import ChunkRunner

__all__ = [
    "KERNELS",
    "ParallelRunResult",
    "ParallelPipeline",
    "run_pp_transducer",
    "run_sequential_pipeline",
]

#: chunk-executor implementations: the dense table-driven kernel
#: (:mod:`repro.core.kernel`, the default) and the object-graph
#: interpreter (:class:`~repro.transducer.runner.ChunkRunner`, retained
#: as the differential oracle)
KERNELS = ("dense", "object")


@dataclass(slots=True)
class ParallelRunResult:
    """Everything a benchmark needs from one parallel run."""

    events: list[MatchEvent]
    final_state: int
    counters: WorkCounters
    chunk_counters: list[WorkCounters] = field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_counters)


@dataclass(frozen=True, slots=True)
class _Ctx:
    """Shared worker context (pickled once per worker by ProcessBackend)."""

    text: str
    automaton: QueryAutomaton
    policy: PathPolicy
    anchor_sids: frozenset[int]
    #: record per-worker spans (lex + chunk) and ship them back in the
    #: ChunkResult; False keeps the untraced path byte-for-byte intact
    trace: bool = False
    #: record per-worker journal events and ship them back in the
    #: ChunkResult (same transport as spans)
    journal: bool = False
    #: fault-injection plane applied inside the worker body; ``None``
    #: still honours ``REPRO_FAULTS``, ``NO_FAULTS`` disables injection
    #: entirely (the resilience fallback runs with the latter)
    faults: FaultPlane | None = None
    #: precompiled dense tables (:class:`repro.xpath.compile_tables.KernelTables`)
    #: — ``None`` selects the object kernel; typed loosely to keep this
    #: module import-free of :mod:`repro.core`
    tables: object | None = None
    #: structural-repetition memoization for the dense kernel: workers
    #: resolve the shared per-tables :class:`repro.xpath.subseq.MemoTable`
    #: from their process-local registry (the table itself holds a lock
    #: and is not shipped)
    memo: bool = False
    #: pre-lexed token tuples, one per chunk index — a serving-layer
    #: cache (the document registry lexes once per document); ``None``
    #: keeps the lex-in-worker path
    pretokens: tuple | None = None
    #: stack-sampling rate in Hz (0 = off): each worker samples its own
    #: thread while it executes the chunk and ships the collapsed-stack
    #: profile back in ``ChunkResult.samples`` (same transport as spans)
    sample: float = 0.0


def _skip_leading_end(tokens, begin: int):
    """Drop the end token at ``begin`` (a join-resolved divergence)."""
    it = iter(tokens)
    first = next(it, None)
    if first is not None and not (first.is_end and first.offset == begin):
        yield first
    yield from it


def _make_runner(automaton, policy, anchor_sids, tables, memo=False):
    """Instantiate the chunk executor a compiled-tables value selects."""
    if tables is not None:
        # deferred import: repro.core imports this module at load time
        from ..core.kernel import DenseRunner

        memo_table = None
        if memo:
            from ..xpath.subseq import memo_for_tables

            memo_table = memo_for_tables(tables)
        return DenseRunner(automaton, policy, anchor_sids, tables=tables,
                           memo=memo_table)
    return ChunkRunner(automaton, policy, anchor_sids)


def _run_one_chunk(ctx: _Ctx, chunk: Chunk, attempt: int = 0) -> ChunkResult:
    """Worker body: lex and execute one chunk (module-level: picklable).

    With ``ctx.sample`` set, a per-chunk stack sampler watches *this*
    worker thread for the duration and the collapsed profile rides back
    in ``ChunkResult.samples`` — the only profiler transport that
    crosses a process-pool boundary.
    """
    if ctx.sample > 0:
        import threading

        from ..obs.sampler import StackSampler

        sampler = StackSampler(interval=1.0 / ctx.sample,
                               only_ident=threading.get_ident())
        sampler.start()
        try:
            result = _run_one_chunk_body(ctx, chunk, attempt)
        finally:
            sampler.stop()
        result.samples = sampler.profile.to_dict()
        return result
    return _run_one_chunk_body(ctx, chunk, attempt)


def _run_one_chunk_body(ctx: _Ctx, chunk: Chunk, attempt: int = 0) -> ChunkResult:
    corrupt = apply_faults(ctx.faults, chunk.index, attempt)
    runner = _make_runner(ctx.automaton, ctx.policy, ctx.anchor_sids, ctx.tables,
                          memo=ctx.memo)
    start = frozenset((ctx.automaton.initial,)) if chunk.index == 0 else None
    jr = Journal() if ctx.journal else NULL_JOURNAL
    if not ctx.trace:
        if ctx.pretokens is not None:
            tokens = ctx.pretokens[chunk.index]
        else:
            tokens = lex_range(ctx.text, chunk.begin, chunk.end)
        result = runner.run_chunk(
            tokens, chunk.index, chunk.begin, chunk.end,
            start_states=start, journal=jr,
        )
        if jr.enabled:
            result.journal = list(jr.events)
        return _corrupt_result(result) if corrupt else result

    # traced path: one lane per worker; lexing is materialised so the
    # lex span measures tokenisation separately from transduction
    # (pre-lexed chunks skip that span — there is nothing to measure,
    # and the span machinery would charge the traced path a phantom
    # cost the untraced path never pays)
    tracer = Tracer(tid=chunk.index + 1)
    with tracer.span(f"chunk[{chunk.index}]", cat="chunk") as sp:
        if ctx.pretokens is not None:
            tokens = ctx.pretokens[chunk.index]
        else:
            with tracer.span("lex", cat="chunk") as lex_sp:
                tokens = list(lex_range(ctx.text, chunk.begin, chunk.end))
                lex_sp.args["tokens"] = len(tokens)
        result = runner.run_chunk(
            tokens, chunk.index, chunk.begin, chunk.end,
            start_states=start, journal=jr,
        )
        _snapshot_chunk_counters(
            sp, result.counters,
            kernel="dense" if ctx.tables is not None else "object",
        )
    result.spans = tracer.spans
    if jr.enabled:
        result.journal = list(jr.events)
    return _corrupt_result(result) if corrupt else result


def _run_one_chunk_attempt(ctx: _Ctx, work: tuple[Chunk, int]) -> ChunkResult:
    """Supervised worker body: ``work`` carries the attempt number.

    The attempt rides with the item (rather than living in driver-side
    state) so fault rules keyed on it behave identically in-process and
    across a process pool's pickling boundary.
    """
    chunk, attempt = work
    return _run_one_chunk(ctx, chunk, attempt)


def _corrupt_result(result: ChunkResult) -> ChunkResult:
    """Mangle a chunk result the way a ``corrupt`` fault promises.

    The damage is chosen to be *detectable* by
    :func:`_validate_chunk_result` — a wrong chunk identity and a
    missing mapping — mimicking a worker that replied out of protocol.
    """
    result.index = -result.index - 1
    result.cohorts = []
    return result


def _validate_chunk_result(result: object, chunk: Chunk) -> str | None:
    """Mapping-completeness check for one chunk result (``None`` = ok)."""
    if not isinstance(result, ChunkResult):
        return f"expected a ChunkResult, got {type(result).__name__}"
    if result.index != chunk.index:
        return f"chunk index mismatch (got {result.index}, expected {chunk.index})"
    if (result.begin, result.end) != (chunk.begin, chunk.end):
        return (f"chunk range mismatch (got [{result.begin}, {result.end}), "
                f"expected [{chunk.begin}, {chunk.end}))")
    if result.main is None:
        return "result carries no main cohort (empty mapping)"
    return None


def _snapshot_chunk_counters(span, counters: WorkCounters, kernel: str | None = None) -> None:
    """Attach the per-chunk counter snapshot a timeline row needs."""
    span.args.update(
        tokens=counters.total_tokens,
        switches=counters.switches,
        starting_paths=counters.starting_paths,
        divergences=counters.divergences,
        paths_eliminated=counters.paths_eliminated,
    )
    if kernel is not None:
        span.args["kernel"] = kernel


class ParallelPipeline:
    """Reusable split/parallel/join driver for one automaton + policy.

    ``resilience`` turns on chunk-level supervision of the parallel
    phase (per-attempt timeout, bounded retry with backoff, serial
    fallback — see :mod:`repro.parallel.resilience`); ``faults`` is a
    :class:`~repro.parallel.faults.FaultPlane` (or spec string) injected
    into the chunk workers.  With supervision on, the join also accepts
    an incomplete mapping by falling back to the selective-reprocessing
    recovery path instead of raising, so a degraded chunk costs
    re-execution of (at most) itself, never its siblings.
    """

    def __init__(
        self,
        automaton: QueryAutomaton,
        policy: PathPolicy,
        anchor_sids: frozenset[int] = frozenset(),
        backend: Backend | None = None,
        tracer: Tracer | None = None,
        resilience: RetryPolicy | None = None,
        faults: FaultPlane | str | None = None,
        kernel: str = "dense",
        journal: Journal | None = None,
        memo: bool = True,
        sample: float = 0.0,
        profile=None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r} (choose from {KERNELS})")
        if sample < 0:
            raise ValueError(f"sample rate must be >= 0 Hz, got {sample}")
        self.automaton = automaton
        self.policy = policy
        self.anchor_sids = anchor_sids
        self.backend = backend or SerialBackend()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.resilience = resilience
        self.faults = parse_fault_spec(faults) if isinstance(faults, str) else faults
        self.kernel = kernel
        self.journal = journal if journal is not None else NULL_JOURNAL
        # stack-sampling rate (Hz); the accumulated profile may be
        # caller-owned (engines construct a GAP pipeline per run and
        # share one profile across them) — repeated runs aggregate
        self.sample = float(sample)
        self.profile = profile
        if self.sample > 0 and self.profile is None:
            from ..obs.sampler import SampleProfile

            self.profile = SampleProfile()
        self._tables = None
        if kernel == "dense":
            # compile once per pipeline through the structural cache; a
            # policy the compiler does not recognise yields None and the
            # pipeline transparently runs the object kernel
            from ..core.kernel import tables_for_policy

            self._tables = tables_for_policy(
                automaton, policy, anchor_sids, journal=self.journal
            )
        # structural-repetition memoization (default on for the dense
        # kernel; observationally identical to memo-off — see
        # :mod:`repro.xpath.subseq`)
        self.memo = bool(memo) and self._tables is not None

    def _persist_memo(self) -> None:
        """Write the memo through to the artifact store when warranted."""
        if self.memo:
            from ..xpath.subseq import maybe_persist_memo

            maybe_persist_memo(self._tables)

    def chunk_runner(self):
        """The chunk executor this pipeline's kernel/memo config selects.

        Exposed for callers that drive chunks one at a time instead of
        through :meth:`run`/:meth:`run_tokens` — the streaming
        subsystem evaluates each sealed chunk with exactly this runner
        so its counters stay byte-identical to a batch run.
        """
        return _make_runner(self.automaton, self.policy, self.anchor_sids,
                            self._tables, memo=self.memo)

    def run_tokens(self, tokens: list, n_chunks: int,
                   edges: list[int] | None = None) -> ParallelRunResult:
        """Execute the three phases over a materialised token list.

        The token-mode pipeline serves inputs that are not
        chunk-lexable text — JSON documents tokenised by
        :mod:`repro.jsonstream` — by splitting the *token list* into
        contiguous chunks.  Token offsets must be strictly increasing
        (the JSON tokeniser guarantees this); reprocessing slices the
        list by offset.  Tokenisation itself is a sequential
        preprocessing step in this mode (parallel JSON lexing is its
        own research problem and out of scope).

        ``edges`` overrides the boundary computation with an explicit
        sorted edge list (``[0, …, len(tokens)]``, interior cuts on
        strictly-increasing offsets) — the stream-vs-batch differential
        uses it to replay a stream's sealed chunk boundaries.
        """
        if not tokens:
            return ParallelRunResult(
                events=[], final_state=self.automaton.initial, counters=WorkCounters()
            )
        offsets = [t.offset for t in tokens]
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise ValueError(
                "token-mode execution requires non-decreasing offsets"
            )
        end_sentinel = offsets[-1] + 1
        if edges is None:
            # chunk boundaries must fall on strictly-increasing offsets
            # so that offset-based reprocess slicing is unambiguous (a
            # wrapper START and its scalar TEXT may share an offset)
            cuts_set = set()
            for k in range(1, n_chunks):
                cut = len(tokens) * k // n_chunks
                while 0 < cut < len(tokens) and offsets[cut] == offsets[cut - 1]:
                    cut += 1
                if 0 < cut < len(tokens):
                    cuts_set.add(cut)
            cuts = sorted(cuts_set)
            edges = [0, *cuts, len(tokens)]
        else:
            if edges[0] != 0 or edges[-1] != len(tokens) or \
                    any(b <= a for a, b in zip(edges, edges[1:])):
                raise ValueError("edges must be sorted, 0-led and end at len(tokens)")
            for cut in edges[1:-1]:
                if offsets[cut] == offsets[cut - 1]:
                    raise ValueError(
                        f"edge {cut} does not fall on a strictly-increasing offset"
                    )

        tracer = self.tracer
        journal = self.journal
        runner = self.chunk_runner()
        sampler = None
        if self.sample > 0:
            # token-mode execution is serial in this thread, so one
            # sampler over the whole chunk loop covers it
            import threading

            from ..obs.sampler import StackSampler

            sampler = StackSampler(profile=self.profile,
                                   interval=1.0 / self.sample,
                                   only_ident=threading.get_ident()).start()
        results: list[ChunkResult] = []
        try:
            for ci, (i0, i1) in enumerate(zip(edges, edges[1:])):
                begin = offsets[i0]
                end = offsets[i1] if i1 < len(tokens) else end_sentinel
                start = frozenset((self.automaton.initial,)) if ci == 0 else None
                with tracer.span(f"chunk[{ci}]", cat="chunk") as sp:
                    r = runner.run_chunk(
                        tokens[i0:i1], ci, begin, end, start_states=start, journal=journal
                    )
                    if tracer.enabled:
                        _snapshot_chunk_counters(sp, r.counters, kernel=self.kernel)
                results.append(r)
        finally:
            if sampler is not None:
                sampler.stop()

        totals = WorkCounters()
        per_chunk: list[WorkCounters] = []
        for r in results:
            per_chunk.append(r.counters)
            totals.merge(r.counters)

        def reprocess(begin: int, end: int, state: int, stack: list[int], skip_end: bool):
            with tracer.span("reprocess", cat="phase") as sp:
                lo = bisect_left(offsets, begin)
                hi = bisect_left(offsets, end)
                sub = tokens[lo:hi]
                if skip_end and sub and sub[0].is_end and sub[0].offset == begin:
                    sub = sub[1:]
                sub_counters = WorkCounters()
                res = run_sequential(
                    self.automaton, sub, self.anchor_sids,
                    state=state, stack=stack, counters=sub_counters,
                )
                sp.args.update(begin=begin, end=end, tokens=sub_counters.stack_tokens)
            if journal.enabled:
                journal.record("reprocess", offset=begin, begin=begin, end=end,
                               tokens=sub_counters.stack_tokens)
            return res.state, res.stack, res.events, sub_counters.stack_tokens

        strict = not self.policy.speculative
        with tracer.span("join", cat="phase") as sp:
            state, _stack, events = join_results(
                (self.automaton.initial, [], []), results, reprocess, totals,
                strict=strict, journal=journal,
            )
            sp.args.update(
                misspeculations=totals.misspeculations,
                reprocessed_tokens=totals.reprocessed_tokens,
            )
        self._persist_memo()
        return ParallelRunResult(
            events=events, final_state=state, counters=totals, chunk_counters=per_chunk
        )

    def run(
        self,
        text: str,
        n_chunks: int,
        chunks: list[Chunk] | None = None,
        chunk_tokens: tuple | None = None,
    ) -> ParallelRunResult:
        """Execute the three phases over ``text`` with ``n_chunks`` workers.

        ``chunks`` skips the split phase with a precomputed tag-aligned
        chunk list, and ``chunk_tokens`` (one token tuple per chunk,
        same order) skips per-worker lexing — the serving layer's
        per-document cache (:mod:`repro.service.registry`) prepares
        both once per ingested document.  Results are identical to the
        uncached path: the chunk list is what :func:`split_chunks`
        returns and the token tuples are what workers would lex.
        """
        tracer = self.tracer
        journal = self.journal
        if chunk_tokens is not None:
            if chunks is None:
                raise ValueError("chunk_tokens requires a matching chunks list")
            if len(chunk_tokens) != len(chunks):
                raise ValueError(
                    f"chunk_tokens/chunks length mismatch "
                    f"({len(chunk_tokens)} != {len(chunks)})"
                )
        with tracer.span("split", cat="phase") as sp:
            if chunks is None:
                chunks = split_chunks(text, n_chunks)
            sp.args["n_chunks"] = len(chunks)
        ctx = _Ctx(text, self.automaton, self.policy, self.anchor_sids,
                   trace=tracer.enabled, journal=journal.enabled,
                   faults=self.faults, tables=self._tables,
                   pretokens=chunk_tokens, memo=self.memo,
                   sample=self.sample)
        report: ResilienceReport | None = None
        with tracer.span("parallel", cat="phase"):
            if self.resilience is not None:
                fallback_ctx = replace(ctx, faults=NO_FAULTS)
                results, report = supervised_map(
                    self.backend, ctx, _run_one_chunk_attempt, chunks,
                    self.resilience,
                    validate=_validate_chunk_result,
                    fallback=lambda chunk: _run_one_chunk(fallback_ctx, chunk),
                    tracer=tracer,
                    journal=journal,
                )
            else:
                results = self.backend.map_with_context(ctx, _run_one_chunk, chunks)

        totals = WorkCounters()
        per_chunk: list[WorkCounters] = []
        # results arrive in chunk order whatever the backend, so adopting
        # each chunk's journal here yields one deterministic event stream
        for r in results:
            per_chunk.append(r.counters)
            totals.merge(r.counters)
            if r.spans:
                tracer.extend(r.spans)
            if r.journal:
                journal.adopt(r.journal)
            if r.samples and self.profile is not None:
                self.profile.merge(r.samples)
        if report is not None:
            totals.retries += report.retries
            totals.timeouts += report.timeouts
            totals.fallbacks += report.fallbacks

        def reprocess(begin: int, end: int, state: int, stack: list[int], skip_end: bool):
            with tracer.span("reprocess", cat="phase") as sp:
                sub_counters = WorkCounters()
                tokens = lex_range(text, begin, end)
                if skip_end:
                    tokens = _skip_leading_end(tokens, begin)
                res = run_sequential(
                    self.automaton,
                    tokens,
                    self.anchor_sids,
                    state=state,
                    stack=stack,
                    counters=sub_counters,
                )
                sp.args.update(begin=begin, end=end, tokens=sub_counters.stack_tokens)
            if journal.enabled:
                journal.record("reprocess", offset=begin, begin=begin, end=end,
                               tokens=sub_counters.stack_tokens)
            return res.state, res.stack, res.events, sub_counters.stack_tokens

        # supervision relaxes the strict join: an incomplete mapping is
        # then recovered by targeted reprocessing (the speculative
        # machinery) rather than failing the whole run
        strict = not self.policy.speculative and self.resilience is None
        with tracer.span("join", cat="phase") as sp:
            state, _stack, events = join_results(
                (self.automaton.initial, [], []), results, reprocess, totals,
                strict=strict, journal=journal,
            )
            sp.args.update(
                misspeculations=totals.misspeculations,
                reprocessed_tokens=totals.reprocessed_tokens,
            )
        self._persist_memo()
        return ParallelRunResult(
            events=events, final_state=state, counters=totals, chunk_counters=per_chunk
        )


def run_pp_transducer(
    text: str,
    automaton: QueryAutomaton,
    anchor_sids: frozenset[int] = frozenset(),
    n_chunks: int = 4,
    backend: Backend | None = None,
    kernel: str = "dense",
) -> ParallelRunResult:
    """Run the PP-Transducer baseline (Ogden et al., VLDB'13)."""
    policy = BaselinePolicy(automaton)
    pipeline = ParallelPipeline(automaton, policy, anchor_sids, backend, kernel=kernel)
    return pipeline.run(text, n_chunks)


def run_sequential_pipeline(
    text: str,
    automaton: QueryAutomaton,
    anchor_sids: frozenset[int] = frozenset(),
) -> ParallelRunResult:
    """Run the plain sequential transducer (the speedup baseline).

    Packaged as a :class:`ParallelRunResult` with a single "chunk" so
    speedup computations treat it uniformly.
    """
    counters = WorkCounters(chunks=1, bytes_lexed=len(text), starting_paths=1)
    res = run_sequential(
        automaton, lex_range(text, 0, len(text)), anchor_sids, counters=counters
    )
    return ParallelRunResult(
        events=res.events,
        final_state=res.state,
        counters=counters,
        chunk_counters=[counters],
    )
