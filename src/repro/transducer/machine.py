"""Sequential pushdown transducer — Definition 1 of the paper.

The finite control is a :class:`~repro.xpath.automaton.QueryAutomaton`;
the stack alphabet is the state set (Γ = Q, the paper's convention
after Ogden et al.).  The three transition kinds map onto the token
kinds exactly as in Section 2.2:

* **push** — a start tag pushes the current state and moves to
  ``δ(state, tag)``; if the new state accepts a sub-query, a HIT event
  is written to the output tape;
* **pop** — an end tag pops the stack into the current state; just
  before popping, anchor sub-queries accepted by the *current* state
  (which, thanks to balanced children, is exactly the state entered at
  the matching start tag) write their CLOSE events;
* **plain** — text leaves state and stack untouched.

:func:`run_sequential` is both the single-threaded baseline the paper
measures speedups against and the reprocessing engine used after a
misspeculation, so it accepts an arbitrary starting state/stack and
reports the final configuration.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..xpath.automaton import QueryAutomaton
from ..xpath.events import MatchEvent, close, hit
from ..xmlstream.tokens import Token, TokenKind
from .counters import WorkCounters

__all__ = ["StackUnderflow", "SequentialResult", "run_sequential"]


class StackUnderflow(RuntimeError):
    """An end tag required a pop from an empty stack.

    For a full-document run this means malformed input; for a chunk run
    it marks a *path divergence* and is handled by the multi-path
    machinery instead of this fast path.
    """

    def __init__(self, offset: int) -> None:
        super().__init__(f"pop from empty stack at byte {offset}")
        self.offset = offset


@dataclass(slots=True)
class SequentialResult:
    """Outcome of a sequential run over a token range."""

    state: int
    stack: list[int]
    events: list[MatchEvent] = field(default_factory=list)


def run_sequential(
    automaton: QueryAutomaton,
    tokens: Iterable[Token],
    anchor_sids: frozenset[int] = frozenset(),
    state: int | None = None,
    stack: list[int] | None = None,
    counters: WorkCounters | None = None,
) -> SequentialResult:
    """Run the sequential PDT over ``tokens``.

    Parameters
    ----------
    automaton:
        The query DFA (finite control).
    tokens:
        Token stream (whole document or any suffix with a known
        context).
    anchor_sids:
        Sub-queries whose element close events must be reported (see
        :mod:`repro.xpath.events`).
    state, stack:
        Starting configuration; defaults to the automaton's initial
        state with an empty stack.  ``stack`` is *not* copied — callers
        own it.
    counters:
        Optional work counters to increment (stack-mode tokens).

    Raises
    ------
    StackUnderflow
        If an end tag arrives with an empty stack (never happens for a
        well-formed full document).
    """
    if state is None:
        state = automaton.initial
    if stack is None:
        stack = []
    events: list[MatchEvent] = []
    accepts = automaton.accepts
    n_tokens = 0
    depth = len(stack)  # element depth = open elements = stack height

    for tok in tokens:
        n_tokens += 1
        kind = tok.kind
        if kind == TokenKind.START:
            stack.append(state)
            depth += 1
            state = automaton.step(state, tok.name)
            for sid in accepts[state]:
                events.append(hit(sid, tok.offset, depth))
        elif kind == TokenKind.END:
            if not stack:
                if counters is not None:
                    counters.stack_tokens += n_tokens - 1
                raise StackUnderflow(tok.offset)
            for sid in accepts[state]:
                if sid in anchor_sids:
                    events.append(close(sid, tok.offset, depth))
            state = stack.pop()
            depth -= 1
        # TEXT: plain transition, state and stack unchanged

    if counters is not None:
        counters.stack_tokens += n_tokens
    return SequentialResult(state=state, stack=stack, events=events)
