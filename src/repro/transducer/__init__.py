"""Pushdown-transducer core: sequential machine, mappings, parallel pipeline.

* :mod:`~repro.transducer.machine` — sequential PDT (Definition 1);
* :mod:`~repro.transducer.mapping` — mappings (Definition 3) and join;
* :mod:`~repro.transducer.doubletree` — multi-path structure with
  path convergence (the baseline's double tree);
* :mod:`~repro.transducer.policies` — per-variant path policies
  (the PP-Transducer baseline lives here);
* :mod:`~repro.transducer.runner` — the parallel-phase chunk engine;
* :mod:`~repro.transducer.pipeline` — split/parallel/join driver;
* :mod:`~repro.transducer.counters` — work counters for the cost model.
"""

from .counters import WorkCounters
from .doubletree import Member, PathGroup, merge_groups, segment_entries
from .machine import SequentialResult, StackUnderflow, run_sequential
from .mapping import ChunkResult, Cohort, JoinError, Segment, SegmentEntry, join_results
from .pipeline import (
    ParallelPipeline,
    ParallelRunResult,
    run_pp_transducer,
    run_sequential_pipeline,
)
from .policies import (
    BaselinePolicy,
    ELIMINATE_ALWAYS,
    ELIMINATE_NEVER,
    ELIMINATE_PAPER,
    PathPolicy,
)
from .runner import ChunkRunner

__all__ = [
    "BaselinePolicy",
    "ChunkResult",
    "ChunkRunner",
    "Cohort",
    "ELIMINATE_ALWAYS",
    "ELIMINATE_NEVER",
    "ELIMINATE_PAPER",
    "JoinError",
    "Member",
    "ParallelPipeline",
    "ParallelRunResult",
    "PathGroup",
    "PathPolicy",
    "Segment",
    "SegmentEntry",
    "SequentialResult",
    "StackUnderflow",
    "WorkCounters",
    "join_results",
    "merge_groups",
    "run_pp_transducer",
    "run_sequential",
    "run_sequential_pipeline",
    "segment_entries",
]
