"""Path policies — what a chunk runner may assume about execution paths.

The chunk runner (:mod:`repro.transducer.runner`) is shared by every
parallel variant in the paper's evaluation; a :class:`PathPolicy`
object encapsulates all the differences:

========================  ==========================================
Hook                      Question it answers
========================  ==========================================
``start_states(token)``   Which states may a chunk start from, given
                          its first token?  (Elimination scenario 1)
``pop_candidates(tag)``   Which values may an underflow pop produce
                          for ``</tag>``?  (Divergence enumeration)
``before_end(tag)``       Which states are feasible right before
                          ``</tag>``?  (Elimination scenario 2)
``before_start(tag)``     Which states are feasible right before
                          ``<tag>``?  (Elimination scenario 3)
========================  ==========================================

Every hook may return ``None`` meaning "no information — assume every
state", which is both the baseline's permanent answer and the
speculative table's answer for tags missing from a partial grammar
(the paper's *degrade to basic parallel transducer*).

:class:`BaselinePolicy` reproduces the PP-Transducer (Ogden et al.,
VLDB'13): all states at chunk starts, FA-restricted (or naive Γ)
divergence candidates, no grammar-based elimination, and no runtime
data-structure switching.  The GAP policies live in
:mod:`repro.core.gap_transducer`, next to the feasible-path table they
consume.
"""

from __future__ import annotations

from ..xpath.automaton import QueryAutomaton
from ..xmlstream.tokens import Token

__all__ = ["PathPolicy", "BaselinePolicy", "ELIMINATE_NEVER", "ELIMINATE_PAPER", "ELIMINATE_ALWAYS"]

#: never consult feasibility (baseline)
ELIMINATE_NEVER = "never"
#: the paper's three scenarios: chunk start, divergence, first start tag after a divergence
ELIMINATE_PAPER = "paper"
#: additionally check every start and end tag (eager ablation variant)
ELIMINATE_ALWAYS = "always"


class PathPolicy:
    """Base policy: no information, no elimination, no switching.

    Subclasses override hooks; the defaults answer "all states".
    """

    #: speculative semantics: `before_start` *replaces* the live set and
    #: revives missing states as restart paths (Section 5.2)
    speculative: bool = False
    #: one of ELIMINATE_NEVER / ELIMINATE_PAPER / ELIMINATE_ALWAYS
    eliminate: str = ELIMINATE_NEVER
    #: runtime data-structure switching (Section 4.3) enabled
    switch_to_stack: bool = False
    #: whether `None` answers should count as degraded table lookups
    table_based: bool = False

    def __init__(self, automaton: QueryAutomaton) -> None:
        self.automaton = automaton
        self._all_states = frozenset(range(automaton.n_states))

    @property
    def all_states(self) -> frozenset[int]:
        return self._all_states

    # -- hooks ----------------------------------------------------------

    def start_states(self, token: Token) -> frozenset[int] | None:
        """Feasible starting states for a chunk beginning with ``token``."""
        return None

    def pop_candidates(self, tag: str) -> frozenset[int] | None:
        """Possible popped values when ``</tag>`` underflows the stack."""
        return None

    def before_end(self, tag: str) -> frozenset[int] | None:
        """States feasible immediately before ``</tag>``."""
        return None

    def before_start(self, tag: str) -> frozenset[int] | None:
        """States feasible immediately before ``<tag>``."""
        return None


class BaselinePolicy(PathPolicy):
    """The PP-Transducer baseline (Ogden et al., VLDB'13).

    Enumerates every state at chunk starts and the whole stack alphabet
    Γ = Q on divergences.  The FA-only restriction prior work applies
    (footnote 2 of the paper) cannot soundly exclude *any* popped
    value: the element whose end tag underflowed may have been opened
    from any state — including ones whose transition on the tag leads
    to the unrelated-tag state — because the transition function is
    total.  This is exactly why the paper observes that the FA-based
    reduction "often fails to reduce the possibilities of popped-out
    states"; :meth:`QueryAutomaton.fa_pop_candidates` documents the
    (non-restricting) set for analysis, and only the grammar-based
    table of GAP can prune divergences.
    """

    eliminate = ELIMINATE_NEVER
    switch_to_stack = False
    table_based = False
    speculative = False

    def __init__(self, automaton: QueryAutomaton) -> None:
        super().__init__(automaton)
