"""Chunk runner — the parallel-phase engine shared by all variants.

One :class:`ChunkRunner` executes one chunk of the document under a
:class:`~repro.transducer.policies.PathPolicy`.  Depending on the
policy it behaves as

* the **PP-Transducer** parallel phase (baseline policy: start from
  every state, enumerate Γ on divergence, never eliminate, never
  switch data structures),
* the **GAP transducer** parallel phase (feasible-table policy:
  grammar-restricted starts and divergences, dynamic path elimination
  in the paper's three scenarios, runtime data-structure switching), or
* the **speculative GAP** parallel phase (same, plus replace-semantics
  at post-divergence checks and path *revival* that enables selective
  reprocessing).

Live paths are grouped into :class:`~repro.transducer.doubletree.PathGroup`
objects, organised into **cohorts** (one chain per synchronisation
lineage — the main chain plus any speculative restarts).  All groups
of a cohort share their local stack depth, so a cohort's groups always
underflow together; each underflow closes the cohort's current
*segment* (see :mod:`repro.transducer.mapping`) and reopens it keyed
by the enumerated pop candidates.  This keeps the chunk's mapping
table linear in (#segments × #states) rather than exponential in the
number of divergences.

Work accounting: every token adds either one stack-mode step (a single
live path with switching enabled — the configuration in which a GAP
transducer "executes exactly like a sequential pushdown transducer")
or one tree-mode step weighted by the number of live groups.  These
counters drive the simulated-cluster speedup model (DESIGN.md §2).
"""

from __future__ import annotations

import logging
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..obs.journal import NULL_JOURNAL
from ..obs.logsetup import get_logger
from ..xpath.automaton import QueryAutomaton
from ..xpath.events import close, hit
from ..xmlstream.tokens import Token, TokenKind
from .counters import WorkCounters
from .doubletree import PathGroup, merge_groups, segment_entries
from .mapping import ChunkResult, Cohort, Segment
from .policies import ELIMINATE_ALWAYS, ELIMINATE_NEVER, PathPolicy

__all__ = ["ChunkRunner", "spawn_states_arg"]

logger = get_logger("transducer.runner")

#: state lists longer than this are journalled as a count only
_MAX_JOURNAL_STATES = 16


def spawn_states_arg(states) -> dict:
    """The ``path_spawn`` args snapshot for a starting-state set.

    Small sets are recorded verbatim (they are what ``repro explain``
    replays); larger ones only as a count, to keep events bounded.
    """
    states = sorted(states)
    if len(states) <= _MAX_JOURNAL_STATES:
        return {"live": len(states), "states": states}
    return {"live": len(states)}


@dataclass(slots=True)
class _LiveCohort:
    """A cohort still executing: its finished segments + live groups."""

    cohort: Cohort
    groups: list[PathGroup] = field(default_factory=list)


class ChunkRunner:
    """Executes chunks under a path policy (see module docstring)."""

    def __init__(
        self,
        automaton: QueryAutomaton,
        policy: PathPolicy,
        anchor_sids: frozenset[int] = frozenset(),
    ) -> None:
        self.automaton = automaton
        self.policy = policy
        self.anchor_sids = anchor_sids
        # per-state tuple of anchor sub-queries to close on end tags
        self._close_accepts: list[tuple[int, ...]] = [
            tuple(sid for sid in acc if sid in anchor_sids) for acc in automaton.accepts
        ]
        # DEBUG logging is sampled once per chunk, not per token
        self._debug = False
        # journal + chunk identity of the run_chunk call in progress
        self._journal = NULL_JOURNAL
        self._chunk = -1

    # ------------------------------------------------------------------

    def run_chunk(
        self,
        tokens: Iterable[Token],
        index: int,
        begin: int,
        end: int,
        start_states: frozenset[int] | None = None,
        journal=NULL_JOURNAL,
    ) -> ChunkResult:
        """Process one chunk; return its segmented mappings and counters.

        ``start_states`` overrides the policy's scenario-1 inference —
        used for chunk 0, which always starts from the known initial
        configuration.  ``journal`` records the path-lifecycle events
        (spawn/kill/converge/switch) — the default
        :data:`~repro.obs.journal.NULL_JOURNAL` records nothing; events
        are only emitted at check/divergence/merge/switch sites, never
        per token, so the hot loops are identical either way.
        """
        policy = self.policy
        automaton = self.automaton
        accepts = automaton.accepts
        self._debug = logger.isEnabledFor(logging.DEBUG)
        self._journal = journal
        self._chunk = index
        counters = WorkCounters(chunks=1, bytes_lexed=end - begin)
        result = ChunkResult(index=index, begin=begin, end=end, counters=counters)

        token_iter = iter(tokens)
        first = next(token_iter, None)
        if first is None:
            # empty chunk: identity mapping for every allowed state
            states = start_states if start_states is not None else policy.all_states
            counters.starting_paths = len(states)
            if journal.enabled:
                reason = "initial" if start_states is not None else "enumerate"
                journal.record("path_spawn", chunk=index, offset=begin,
                               reason=reason, **spawn_states_arg(states))
            groups = [PathGroup.fresh(s) for s in sorted(states)]
            main = Cohort(restart_offset=begin)
            main.segments.append(Segment(entries=segment_entries(groups, final=True)))
            result.cohorts.append(main)
            counters.mapping_entries = result.mapping_entries()
            return result

        spawn_reason = "initial"
        if start_states is None:
            inferred = policy.start_states(first)
            if inferred is None:
                inferred = policy.all_states
                spawn_reason = "enumerate"
                if policy.table_based:
                    counters.degraded_lookups += 1
            else:
                spawn_reason = "scenario1"
            start_states = inferred

        main = _LiveCohort(cohort=Cohort(restart_offset=begin))
        main.groups = [PathGroup.fresh(s) for s in sorted(start_states)]
        counters.starting_paths = len(main.groups)
        if journal.enabled:
            journal.record("path_spawn", chunk=index, offset=begin,
                           reason=spawn_reason, **spawn_states_arg(start_states))
        cohorts: list[_LiveCohort] = [main]

        stack_mode = policy.switch_to_stack and len(main.groups) == 1
        pending_check = False
        eliminate = policy.eliminate
        speculative = policy.speculative
        switch_enabled = policy.switch_to_stack
        depth = 0  # chunk-local element depth (may go negative)
        # `n_live` is maintained incrementally: the group count only
        # changes at checks, divergences and eliminations (profiling
        # showed the per-token recount dominating the hot loop)
        n_live = len(main.groups)
        step = automaton.step
        START, END = TokenKind.START, TokenKind.END

        for ti, tok in enumerate(_chain_first(first, token_iter)):
            kind = tok.kind

            if n_live == 0:
                if not speculative:
                    break  # non-speculative: no recovery inside the chunk
                if kind != START:
                    continue  # wait for a start tag to revive at

            if kind == START:
                tag = tok.name
                if eliminate != ELIMINATE_NEVER and (
                    pending_check or eliminate == ELIMINATE_ALWAYS or n_live == 0
                ):
                    self._start_tag_check(cohorts, tag, ti, tok.offset, depth, counters)
                    pending_check = False
                    n_live = sum(len(lc.groups) for lc in cohorts)
                    if n_live == 0:
                        depth += 1
                        continue
                offset = tok.offset
                depth += 1
                for lc in cohorts:
                    for g in lc.groups:
                        g.stack.append(g.state)
                        s2 = step(g.state, tag)
                        g.state = s2
                        acc = accepts[s2]
                        if acc:
                            g.events.extend(hit(sid, offset, depth) for sid in acc)
                # pushes are injective in (state, stack): no merging needed

            elif kind == END:
                tag = tok.name
                for lc in cohorts:
                    if not lc.groups:
                        continue
                    if eliminate == ELIMINATE_ALWAYS:
                        feas = policy.before_end(tag)
                        if feas is not None:
                            kept = [g for g in lc.groups if g.state in feas]
                            counters.paths_eliminated += len(lc.groups) - len(kept)
                            lc.groups = kept
                            if not lc.groups:
                                continue
                    # cohort groups share their depth: all underflow or none
                    if lc.groups[0].stack:
                        self._normal_pop(lc, tok.offset, depth, counters)
                    else:
                        self._diverge(lc, tag, tok.offset, depth, counters)
                        pending_check = True
                n_live = sum(len(lc.groups) for lc in cohorts)
                depth -= 1

            # TEXT: plain transition — state and stack unchanged

            if stack_mode and n_live == 1:
                counters.stack_tokens += 1
            else:
                counters.tree_tokens += 1
                counters.tree_path_steps += n_live
                new_mode = switch_enabled and n_live == 1
                if new_mode != stack_mode:
                    counters.switches += 1
                    stack_mode = new_mode
                    if journal.enabled:
                        journal.record("switch", chunk=index, offset=tok.offset,
                                       to="stack" if new_mode else "tree")

        for lc in cohorts:
            lc.cohort.segments.append(
                Segment(entries=segment_entries(lc.groups, final=True))
            )
            result.cohorts.append(lc.cohort)
        counters.mapping_entries = result.mapping_entries()
        if self._debug and counters.paths_eliminated:
            logger.debug(
                "chunk %d path-kill summary: started %d, eliminated %d, "
                "converged %d, %d divergence(s), %d switch(es)",
                index, counters.starting_paths, counters.paths_eliminated,
                counters.paths_converged, counters.divergences, counters.switches,
            )
        return result

    # ------------------------------------------------------------------

    def _start_tag_check(
        self,
        cohorts: list[_LiveCohort],
        tag: str,
        token_index: int,
        offset: int,
        depth: int,
        counters: WorkCounters,
    ) -> None:
        """Elimination scenario 3 (and speculative path revival)."""
        policy = self.policy
        feas = policy.before_start(tag)
        if feas is None:
            if policy.table_based:
                counters.degraded_lookups += 1
            return
        live_states: set[int] = set()
        eliminated = 0
        for lc in cohorts:
            kept = [g for g in lc.groups if g.state in feas]
            eliminated += len(lc.groups) - len(kept)
            lc.groups = kept
            live_states.update(g.state for g in kept)
        counters.paths_eliminated += eliminated
        journal = self._journal
        if journal.enabled and eliminated:
            journal.record("path_killed", chunk=self._chunk, offset=offset, tag=tag,
                           reason="infeasible", killed=eliminated,
                           live=sum(len(lc.groups) for lc in cohorts))
        if self._debug and eliminated:
            logger.debug(
                "scenario-3 check before <%s> at %d: eliminated %d path(s), %d live",
                tag, offset, eliminated, len(live_states),
            )
        if policy.speculative:
            # replace semantics: revive feasible states not currently live
            # as a fresh restart cohort (Section 5.2)
            missing = sorted(feas - live_states)
            if missing:
                revived = _LiveCohort(
                    cohort=Cohort(
                        restart_index=token_index,
                        restart_offset=offset,
                        restart_depth=depth,
                    )
                )
                revived.groups = [PathGroup.fresh(s) for s in missing]
                cohorts.append(revived)
                if journal.enabled:
                    journal.record("path_spawn", chunk=self._chunk, offset=offset,
                                   tag=tag, reason="revival",
                                   **spawn_states_arg(missing))

    def _normal_pop(
        self, lc: _LiveCohort, offset: int, depth: int, counters: WorkCounters
    ) -> None:
        """Balanced end tag: emit anchor closes, pop, merge convergences."""
        close_accepts = self._close_accepts
        for g in lc.groups:
            ca = close_accepts[g.state]
            if ca:
                g.events.extend(close(sid, offset, depth) for sid in ca)
            g.state = g.stack.pop()
        lc.groups, converged = merge_groups(lc.groups)
        counters.paths_converged += converged
        if converged and self._journal.enabled:
            self._journal.record("converge", chunk=self._chunk, offset=offset,
                                 merged=converged, live=len(lc.groups))

    def _diverge(
        self, lc: _LiveCohort, tag: str, offset: int, depth: int, counters: WorkCounters
    ) -> None:
        """Underflow pop: close the segment, reopen keyed by candidates."""
        policy = self.policy
        counters.divergences += 1

        groups = lc.groups
        # elimination scenario 2: the current state must be feasible
        # immediately before this end tag
        if policy.eliminate != ELIMINATE_NEVER:
            feas = policy.before_end(tag)
            if feas is None:
                if policy.table_based:
                    counters.degraded_lookups += 1
            else:
                kept = [g for g in groups if g.state in feas]
                counters.paths_eliminated += len(groups) - len(kept)
                if len(kept) < len(groups):
                    if self._journal.enabled:
                        self._journal.record(
                            "path_killed", chunk=self._chunk, offset=offset,
                            tag=tag, reason="underflow",
                            killed=len(groups) - len(kept), live=len(kept))
                    if self._debug:
                        logger.debug(
                            "scenario-2 check at divergence </%s> at %d: "
                            "eliminated %d path(s), %d live",
                            tag, offset, len(groups) - len(kept), len(kept),
                        )
                groups = kept

        close_accepts = self._close_accepts
        for g in groups:
            ca = close_accepts[g.state]
            if ca:
                g.events.extend(close(sid, offset, depth) for sid in ca)

        lc.cohort.segments.append(
            Segment(entries=segment_entries(groups, final=False), end_tag=tag, end_offset=offset)
        )

        candidates = policy.pop_candidates(tag)
        if candidates is None:
            candidates = policy.all_states
            if policy.table_based:
                counters.degraded_lookups += 1
        lc.groups = [PathGroup.fresh(v) for v in sorted(candidates)]
        if self._journal.enabled:
            self._journal.record("path_spawn", chunk=self._chunk, offset=offset,
                                 tag=tag, reason="divergence",
                                 **spawn_states_arg(candidates))


def _chain_first(first: Token, rest: Iterable[Token]) -> Iterable[Token]:
    yield first
    yield from rest
