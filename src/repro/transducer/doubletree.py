"""Double-tree data structure for multi-path chunk execution.

When a chunk starts from unknown context, the transducer maintains a
*set* of execution paths.  Ogden et al. compress this set with a
"double-tree": one tree over the starting assumptions and one over the
current configurations, so that paths which have converged to the same
configuration share all future computation, and the assumption side
never materialises a cross-product (see
:mod:`repro.transducer.mapping` for the segmented mapping this feeds).

This module is the in-flight half of that structure:

* a :class:`PathGroup` is one shared configuration — a current state
  plus the local stack segment pushed since the current segment began.
  All work (transitions, pushes, pops, event emission) is done once per
  *group*, not once per path;
* each group carries its :class:`Member` list — the segment keys
  (assumed starting state for segment 0, assumed popped value
  otherwise) that have converged into it.  A member keeps the tuple of
  event-list *segments* accumulated before each convergence
  (structural sharing: segments are the event lists of the groups it
  passed through, never copied);
* groups merge whenever their ``(state, stack)`` keys collide — after
  ordinary pops, when the popped value overwrites the state — which is
  exactly the paper's *path convergence*.

The per-token cost of tree-mode execution is Θ(#groups); the per-token
cost of a plain stack is Θ(1).  The GAP runner switches between the
two representations at runtime (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xpath.events import MatchEvent
from .mapping import SegmentEntry

__all__ = ["Member", "PathGroup", "merge_groups", "segment_entries"]


@dataclass(slots=True)
class Member:
    """One segment key's view of a group: identity plus event prefixes.

    ``prefix`` is a tuple of references to event lists of previously
    merged groups; the member's full tape within the current segment is
    the concatenation of those segments followed by the current group's
    events.  Segment lists are shared between members, never copied.
    """

    key: int
    prefix: tuple[list[MatchEvent], ...] = ()

    def extended(self, segment: list[MatchEvent]) -> "Member":
        """This member with ``segment`` appended to its frozen prefix."""
        if not segment:
            return self
        return Member(self.key, (*self.prefix, segment))

    def events(self, tail: list[MatchEvent]) -> list[MatchEvent]:
        """Materialise the member's tape: prefix segments then ``tail``."""
        out: list[MatchEvent] = []
        for segment in self.prefix:
            out.extend(segment)
        out.extend(tail)
        return out


@dataclass(slots=True)
class PathGroup:
    """A shared execution configuration with its converged members."""

    state: int
    stack: list[int]
    members: list[Member]
    events: list[MatchEvent]

    @classmethod
    def fresh(cls, state: int, key: int | None = None) -> "PathGroup":
        """A group for a newly assumed state (key defaults to the state)."""
        return cls(
            state=state,
            stack=[],
            members=[Member(state if key is None else key)],
            events=[],
        )

    def group_key(self) -> tuple[int, tuple[int, ...]]:
        return (self.state, tuple(self.stack))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathGroup(state={self.state}, stack={self.stack}, members={len(self.members)})"


def merge_groups(groups: list[PathGroup]) -> tuple[list[PathGroup], int]:
    """Collapse groups with identical ``(state, stack)`` configurations.

    Returns the (order-preserving) merged list and the number of path
    convergences (groups absorbed).  Merging folds event lists into the
    members' prefixes; the survivor gets a fresh shared event list when
    a merge actually happens (its previous list is frozen into its own
    members' prefixes).
    """
    if len(groups) <= 1:
        return groups, 0
    by_key: dict[tuple[int, tuple[int, ...]], PathGroup] = {}
    out: list[PathGroup] = []
    converged = 0
    for g in groups:
        key = g.group_key()
        existing = by_key.get(key)
        if existing is None:
            by_key[key] = g
            out.append(g)
            continue
        converged += 1
        if existing.events:
            # freeze the survivor's tape; future events start a new shared list
            existing.members = [m.extended(existing.events) for m in existing.members]
            existing.events = []
        existing.members.extend(m.extended(g.events) for m in g.members)
    return out, converged


def segment_entries(
    groups: list[PathGroup], final: bool
) -> dict[int, SegmentEntry]:
    """Finalise a segment: one :class:`SegmentEntry` per member key.

    ``final`` marks a chunk's last segment, whose entries carry the
    finishing configuration; interior segments (closed by a
    divergence) only carry events.
    """
    entries: dict[int, SegmentEntry] = {}
    for g in groups:
        pushed = tuple(g.stack) if final else ()
        state = g.state if final else -1
        for m in g.members:
            entries[m.key] = SegmentEntry(
                events=m.events(g.events), final_state=state, pushed=pushed
            )
    return entries
