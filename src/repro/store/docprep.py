"""Cache-aside document preparation over the artifact store.

The expensive per-document work the service registry (and the CLI
one-shots) repeat on every cold start is splitting and lexing:
tag-aligned chunking is a linear scan, and pre-lexing tokenises the
whole document.  These helpers look both up in an
:class:`~repro.store.artifacts.ArtifactStore` by **document content
hash** before computing, and publish what they compute — the classic
cache-aside pattern, complementing the write-through wiring under the
compile cache.

Decoded artifacts are sanity-checked against the document they claim
to describe (chunk coverage, token-run count); any mismatch — however
it got there — invalidates the artifact and recomputes, so a stale or
foreign artifact can never poison a result.

Tracer contract: the ``split``/``lex`` phase spans are opened **only
when the work actually runs**.  A fully warm preparation emits no such
spans — which is exactly what the warm-start differential test asserts
to prove the work was skipped rather than merely fast.
"""

from __future__ import annotations

from hashlib import sha256

from ..obs.tracer import NULL_TRACER
from ..xmlstream.chunking import Chunk, split_chunks
from ..xmlstream.lexer import lex_range
from . import codec
from .artifacts import ArtifactStore

__all__ = ["content_key", "prepare_xml", "prepare_json"]


def content_key(text: str, n_chunks: int = 0) -> str:
    """The store key for one document's derived artifacts.

    Split and token artifacts depend on the chunk width, so it is part
    of the key; pass ``n_chunks=0`` for width-independent artifacts
    (the flat JSON token list).
    """
    h = sha256()
    h.update(f"{n_chunks}\x00".encode())
    h.update(text.encode("utf-8"))
    return h.hexdigest()


def _stored_chunks(
    store: ArtifactStore, key: str, text: str
) -> list[Chunk] | None:
    payload = store.get("split", key)
    if payload is None:
        return None
    try:
        chunks = codec.decode_chunks(payload)
    except codec.CodecError as exc:
        store.invalidate("split", key, f"decode:{exc}")
        return None
    # the artifact must actually cover this document
    if chunks and (chunks[0].begin != 0 or chunks[-1].end != len(text)):
        store.invalidate("split", key, "coverage-mismatch")
        return None
    return chunks


def _stored_chunk_tokens(
    store: ArtifactStore, key: str, n_chunks: int
) -> tuple | None:
    payload = store.get("tokens", key)
    if payload is None:
        return None
    try:
        chunk_tokens = codec.decode_chunk_tokens(payload)
    except codec.CodecError as exc:
        store.invalidate("tokens", key, f"decode:{exc}")
        return None
    if len(chunk_tokens) != n_chunks:
        store.invalidate("tokens", key, "chunk-count-mismatch")
        return None
    return chunk_tokens


def prepare_xml(
    store: ArtifactStore | None,
    text: str,
    n_chunks: int,
    pre_lex: bool = True,
    tracer=NULL_TRACER,
) -> tuple[list[Chunk], tuple | None]:
    """Chunk list and (optionally) per-chunk token tuples for ``text``.

    Identical results to ``split_chunks`` + per-chunk ``lex_range``;
    with a warm ``store`` both computations are skipped entirely (and
    no ``split``/``lex`` spans are recorded).  ``store=None`` degrades
    to the plain computation.
    """
    key = content_key(text, n_chunks) if store is not None else ""
    chunks = _stored_chunks(store, key, text) if store is not None else None
    if chunks is None:
        with tracer.span("split", cat="phase") as sp:
            chunks = split_chunks(text, n_chunks)
            sp.args["n_chunks"] = len(chunks)
        if store is not None:
            store.put("split", key, codec.encode_chunks(chunks))
    if not pre_lex:
        return chunks, None
    chunk_tokens = (
        _stored_chunk_tokens(store, key, len(chunks))
        if store is not None else None
    )
    if chunk_tokens is None:
        with tracer.span("lex", cat="phase") as sp:
            chunk_tokens = tuple(
                tuple(lex_range(text, c.begin, c.end)) for c in chunks
            )
            sp.args["tokens"] = sum(len(t) for t in chunk_tokens)
        if store is not None:
            store.put("tokens", key, codec.encode_chunk_tokens(chunk_tokens))
    return chunks, chunk_tokens


def prepare_json(store: ArtifactStore | None, text: str) -> list:
    """The flat token list for a JSON document (width-independent)."""
    from ..jsonstream import tokenize_json

    key = content_key(text, 0) if store is not None else ""
    if store is not None:
        payload = store.get("tokens", key)
        if payload is not None:
            try:
                return codec.decode_tokens(payload)
            except codec.CodecError as exc:
                store.invalidate("tokens", key, f"decode:{exc}")
    tokens = tokenize_json(text)
    if store is not None:
        store.put("tokens", key, codec.encode_tokens(tokens))
    return tokens
