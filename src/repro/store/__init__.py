"""Persistent compiled-artifact store — warm starts at fleet scale.

See :mod:`repro.store.artifacts` for the on-disk contract (atomic
publication, checksum-verified reads, version-stamped invalidation),
:mod:`repro.store.codec` for the compact binary artifact encodings,
and :mod:`repro.store.docprep` for cache-aside document preparation.
The write-through wiring under the structural compile cache lives in
:mod:`repro.xpath.compile_tables` (``set_artifact_store``).
"""

from .artifacts import ArtifactInfo, ArtifactStore, KINDS
from .codec import CodecError, SCHEMAS
from .docprep import content_key, prepare_json, prepare_xml

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "CodecError",
    "KINDS",
    "SCHEMAS",
    "content_key",
    "prepare_json",
    "prepare_xml",
]
