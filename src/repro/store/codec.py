"""Compact binary serialization for persisted artifacts.

Everything the pipeline precomputes and the artifact store persists is
encoded here, by hand, into a small deterministic binary form:

* :class:`~repro.xpath.compile_tables.KernelTables` — the dense query
  automaton + feasibility rows (the structural compile cache's value);
* :class:`~repro.core.inference.FeasibleTable` — the grammar-inferred
  feasible-path table in its object form;
* chunk splits (:class:`~repro.xmlstream.chunking.Chunk` lists) and
  pre-lexed token caches (per-chunk token tuples for XML, flat token
  lists for JSON).

Why not pickle: artifacts are read back by *future* processes running
*future* code, so the format must fail loudly and cheaply on shape
drift — every decoder bound-checks every read and raises
:class:`CodecError` on anything unexpected, which the store layer
translates into a clean cache miss.  The encoding is also far more
compact than a pickled object graph: token names are interned through
a string table (XML markup is overwhelmingly repetitive), numeric
columns are stored as flat ``array`` buffers, and derivable fields
(``accept_flags``, ``start_sets``, ``all_states``) are rebuilt on
decode instead of stored.

Native byte order and itemsize are stamped into every ``array`` column;
an artifact written by an incompatible interpreter build decodes as a
:class:`CodecError` (→ miss), never as garbage.

Bump the per-kind schema versions in :data:`SCHEMAS` whenever an
encoding here changes shape — the store stamps the version into every
artifact header and treats a mismatch as invalid, which is the upgrade
path: stale artifacts are dropped and rewritten, never misread.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array

from ..core.inference import FeasibleTable
from ..xmlstream.chunking import Chunk
from ..xmlstream.tokens import Token, TokenKind
from ..xpath.compile_tables import KernelTables

__all__ = [
    "CodecError",
    "SCHEMAS",
    "encode_kernel_tables",
    "decode_kernel_tables",
    "encode_feasible_table",
    "decode_feasible_table",
    "encode_chunks",
    "decode_chunks",
    "encode_chunk_tokens",
    "decode_chunk_tokens",
    "encode_tokens",
    "decode_tokens",
    "encode_memo_table",
    "decode_memo_table",
    "encode_checkpoint",
    "decode_checkpoint",
]


class CodecError(ValueError):
    """An artifact payload does not decode under the current schema."""


#: per-kind schema versions, stamped into artifact headers; bump a
#: kind's version when its encoding changes shape and every stale
#: artifact of that kind becomes a clean miss on the next read
SCHEMAS = {
    "tables": 1,     # KernelTables (compile-cache write-through)
    "feasible": 1,   # FeasibleTable (object form)
    "split": 1,      # chunk lists (document registry)
    "tokens": 1,     # pre-lexed token caches (document registry)
    "subseq": 1,     # interned-subsequence memo snapshots (dense kernel)
    "checkpoint": 1, # stream checkpoints (restart/resume state)
}

_BYTEORDER = 0 if sys.byteorder == "little" else 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")

#: TokenKind by wire value — indexing this is ~5x cheaper per token
#: than calling the enum constructor in the decode loop
_TOKEN_KINDS = (TokenKind.START, TokenKind.END, TokenKind.TEXT)


class _Writer:
    """Append-only little-endian buffer."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += _U8.pack(v)

    def u32(self, v: int) -> None:
        self.buf += _U32.pack(v)

    def u64(self, v: int) -> None:
        self.buf += _U64.pack(v)

    def i64(self, v: int) -> None:
        self.buf += _I64.pack(v)

    def blob(self, data: bytes) -> None:
        self.buf += _U32.pack(len(data))
        self.buf += data

    def string(self, s: str) -> None:
        self.blob(s.encode("utf-8"))

    def ints(self, values) -> None:
        """A u32-count-prefixed run of i64 values (state ids, offsets)."""
        seq = list(values)
        self.u32(len(seq))
        for v in seq:
            self.buf += _I64.pack(v)

    def int_array(self, arr: array) -> None:
        """A native ``array`` column, stamped with typecode/itemsize/order."""
        self.u8(ord(arr.typecode))
        self.u8(arr.itemsize)
        self.u8(_BYTEORDER)
        self.blob(arr.tobytes())

    def done(self) -> bytes:
        return bytes(self.buf)


class _Reader:
    """Bounds-checked reader; every violation raises :class:`CodecError`."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise CodecError(
                f"truncated payload (wanted {n} bytes at {self.pos}, "
                f"have {len(self.data)})"
            )
        out = self.data[self.pos:end]
        self.pos = end
        return out

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u32())

    def string(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"malformed utf-8 string: {exc}") from None

    def ints(self) -> tuple[int, ...]:
        n = self.u32()
        if n > len(self.data):  # cheap sanity bound before allocating
            raise CodecError(f"implausible sequence length {n}")
        raw = self._take(8 * n)
        return tuple(array("q", raw)) if _BYTEORDER == 0 else tuple(
            int.from_bytes(raw[i:i + 8], "little", signed=True)
            for i in range(0, len(raw), 8)
        )

    def int_array(self) -> array:
        typecode = chr(self.u8())
        itemsize = self.u8()
        order = self.u8()
        raw = self.blob()
        try:
            arr = array(typecode)
        except ValueError:
            raise CodecError(f"unknown array typecode {typecode!r}") from None
        if arr.itemsize != itemsize or order != _BYTEORDER:
            raise CodecError(
                f"array layout mismatch (typecode {typecode!r}: stored "
                f"itemsize {itemsize}/order {order}, local "
                f"{arr.itemsize}/{_BYTEORDER})"
            )
        if len(raw) % itemsize:
            raise CodecError("array byte length not a multiple of itemsize")
        arr.frombytes(raw)
        return arr

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise CodecError(
                f"{len(self.data) - self.pos} trailing byte(s) after payload"
            )


def _opt_blob(w: _Writer, data: bytes | None) -> None:
    if data is None:
        w.u8(0)
    else:
        w.u8(1)
        w.blob(data)


def _read_opt_blob(r: _Reader) -> bytes | None:
    flag = r.u8()
    if flag == 0:
        return None
    if flag != 1:
        raise CodecError(f"bad optional flag {flag}")
    return r.blob()


# ---------------------------------------------------------------------------
# KernelTables
# ---------------------------------------------------------------------------


def _sets_from_rows(rows: tuple[bytes | None, ...]):
    """Rebuild the pre-sorted state tuples from the membership bitmaps.

    The compiler derives both from the same frozenset (the tuple is the
    bitmap's set bits in ascending order), so only the bitmap is
    stored.
    """
    return tuple(
        None if row is None
        else tuple(i for i, bit in enumerate(row) if bit)
        for row in rows
    )


def encode_kernel_tables(t: KernelTables) -> bytes:
    w = _Writer()
    w.u32(t.n_states)
    w.u32(t.n_symbols)
    w.u32(t.initial)
    w.u32(t.other_sym)
    # sym_ids is {tag: id} over ids 0..n_symbols-2; store tags id-ordered
    by_id = sorted(t.sym_ids.items(), key=lambda kv: kv[1])
    w.u32(len(by_id))
    for tag, _sid in by_id:
        w.string(tag)
    w.int_array(t.trans)
    w.u32(len(t.accepts))
    for acc in t.accepts:
        w.ints(acc)
    w.u32(len(t.close_accepts))
    for acc in t.close_accepts:
        w.ints(acc)
    w.u32(len(t.start_rows))
    for row in t.start_rows:
        _opt_blob(w, row)
    w.u32(len(t.end_rows))
    for row in t.end_rows:
        _opt_blob(w, row)
    if t.text_set is None:
        w.u8(0)
    else:
        w.u8(1)
        w.ints(t.text_set)
    w.u8(1 if t.has_table else 0)
    w.u8(1 if t.complete else 0)
    return w.done()


def decode_kernel_tables(payload: bytes) -> KernelTables:
    r = _Reader(payload)
    n_states = r.u32()
    n_symbols = r.u32()
    initial = r.u32()
    other_sym = r.u32()
    n_tags = r.u32()
    if n_tags != n_symbols - 1 or other_sym != n_tags:
        raise CodecError(
            f"symbol table inconsistent ({n_tags} tags, {n_symbols} symbols, "
            f"other at {other_sym})"
        )
    sym_ids = {r.string(): i for i in range(n_tags)}
    if len(sym_ids) != n_tags:
        raise CodecError("duplicate tag in symbol table")
    trans = r.int_array()
    if len(trans) != n_states * n_symbols:
        raise CodecError(
            f"transition table has {len(trans)} entries, expected "
            f"{n_states * n_symbols}"
        )
    accepts = tuple(r.ints() for _ in range(r.u32()))
    close_accepts = tuple(r.ints() for _ in range(r.u32()))
    if len(accepts) != n_states or len(close_accepts) != n_states:
        raise CodecError("accept rows do not cover every state")
    start_rows = tuple(_read_opt_blob(r) for _ in range(r.u32()))
    end_rows = tuple(_read_opt_blob(r) for _ in range(r.u32()))
    if len(start_rows) != n_symbols or len(end_rows) != n_symbols:
        raise CodecError("feasibility rows do not cover every symbol")
    for row in (*start_rows, *end_rows):
        if row is not None and len(row) != n_states:
            raise CodecError("feasibility bitmap width != n_states")
    text_set = tuple(r.ints()) if r.u8() else None
    has_table = bool(r.u8())
    complete = bool(r.u8())
    r.expect_end()
    return KernelTables(
        n_states=n_states,
        n_symbols=n_symbols,
        initial=initial,
        sym_ids=sym_ids,
        other_sym=other_sym,
        trans=trans,
        accepts=accepts,
        accept_flags=bytes(1 if a else 0 for a in accepts),
        close_accepts=close_accepts,
        close_flags=bytes(1 if a else 0 for a in close_accepts),
        start_rows=start_rows,
        start_sets=_sets_from_rows(start_rows),
        end_rows=end_rows,
        end_sets=_sets_from_rows(end_rows),
        text_set=text_set,
        all_states=tuple(range(n_states)),
        has_table=has_table,
        complete=complete,
    )


# ---------------------------------------------------------------------------
# FeasibleTable
# ---------------------------------------------------------------------------


def _encode_feas_map(w: _Writer, mapping: dict[str, frozenset[int]]) -> None:
    w.u32(len(mapping))
    for tag in sorted(mapping):
        w.string(tag)
        w.ints(sorted(mapping[tag]))


def _decode_feas_map(r: _Reader) -> dict[str, frozenset[int]]:
    return {r.string(): frozenset(r.ints()) for _ in range(r.u32())}


def encode_feasible_table(t: FeasibleTable) -> bytes:
    w = _Writer()
    w.u8(1 if t.complete else 0)
    _encode_feas_map(w, t.before_start)
    _encode_feas_map(w, t.before_end)
    w.ints(sorted(t.text_states))
    return w.done()


def decode_feasible_table(payload: bytes) -> FeasibleTable:
    r = _Reader(payload)
    complete = bool(r.u8())
    before_start = _decode_feas_map(r)
    before_end = _decode_feas_map(r)
    text_states = frozenset(r.ints())
    r.expect_end()
    return FeasibleTable(
        before_start=before_start,
        before_end=before_end,
        text_states=text_states,
        complete=complete,
    )


# ---------------------------------------------------------------------------
# chunk splits
# ---------------------------------------------------------------------------


def encode_chunks(chunks: list[Chunk]) -> bytes:
    w = _Writer()
    w.u32(len(chunks))
    for c in chunks:
        w.u32(c.index)
        w.u64(c.begin)
        w.u64(c.end)
    return w.done()


def decode_chunks(payload: bytes) -> list[Chunk]:
    r = _Reader(payload)
    chunks = [Chunk(r.u32(), r.u64(), r.u64()) for _ in range(r.u32())]
    r.expect_end()
    for i, c in enumerate(chunks):
        if c.index != i or c.end < c.begin:
            raise CodecError(f"malformed chunk row {i}: {c}")
    return chunks


# ---------------------------------------------------------------------------
# token caches
# ---------------------------------------------------------------------------

#: token-cache payload modes
_MODE_CHUNKED = 0  # XML: one token tuple per chunk
_MODE_FLAT = 1     # JSON: a single flat token list


def _encode_token_run(w: _Writer, tokens, table: dict[str, int],
                      strings: list[str]) -> None:
    """One token sequence as three parallel columns.

    Names go through a shared string table — tag names (and much text)
    repeat massively across a document, so each token stores a u32
    reference instead of the string.
    """
    kinds = bytearray()
    offsets = array("q")
    refs = array("I")
    for tok in tokens:
        kinds.append(int(tok.kind))
        offsets.append(tok.offset)
        ref = table.get(tok.name)
        if ref is None:
            ref = table[tok.name] = len(strings)
            strings.append(tok.name)
        refs.append(ref)
    w.u32(len(kinds))
    w.blob(bytes(kinds))
    w.int_array(offsets)
    w.int_array(refs)


def _decode_token_run(r: _Reader, strings: list[str]) -> list[Token]:
    n = r.u32()
    kinds = r.blob()
    offsets = r.int_array()
    refs = r.int_array()
    if not (len(kinds) == len(offsets) == len(refs) == n):
        raise CodecError("token columns disagree on length")
    kind_of = _TOKEN_KINDS
    try:
        return [
            Token(kind_of[k], strings[i], o)
            for k, o, i in zip(kinds, offsets, refs)
        ]
    except IndexError:
        raise CodecError("token kind or string reference out of range") from None


def _encode_token_payload(mode: int, runs) -> bytes:
    strings: list[str] = []
    table: dict[str, int] = {}
    body = _Writer()
    body.u32(len(runs))
    for run in runs:
        _encode_token_run(body, run, table, strings)
    w = _Writer()
    w.u8(mode)
    w.u32(len(strings))
    for s in strings:
        w.string(s)
    w.buf += body.buf
    return w.done()


def _decode_token_payload(payload: bytes, mode: int) -> list[list[Token]]:
    r = _Reader(payload)
    got = r.u8()
    if got != mode:
        raise CodecError(f"token payload mode {got}, expected {mode}")
    n_strings = r.u32()
    if n_strings > len(payload):
        raise CodecError(f"implausible string table size {n_strings}")
    strings = [r.string() for _ in range(n_strings)]
    runs = [_decode_token_run(r, strings) for _ in range(r.u32())]
    r.expect_end()
    return runs


# ---------------------------------------------------------------------------
# interned-subsequence memo snapshots
# ---------------------------------------------------------------------------


def encode_memo_table(seqs, entries) -> bytes:
    """A :class:`~repro.xpath.subseq.MemoTable` snapshot.

    ``seqs`` is the interned-sequence dictionary (each sequence an
    exact-key tuple of structural ``(kind, name)`` pairs, name blanked
    for TEXT tokens); ``entries`` maps ``(entry_state, seq_id)`` to
    ``(exit_state, events)`` with events as ``(evkind, sid, tok_idx,
    rel_depth)`` tuples.  Names go through a shared string table —
    memoized spans are repetitive structure by definition, so the same
    few tags dominate.
    """
    strings: list[str] = []
    table: dict[str, int] = {}
    body = _Writer()
    body.u32(len(seqs))
    for key in seqs:
        body.u32(len(key))
        for kind, name in key:
            body.u8(int(kind))
            ref = table.get(name)
            if ref is None:
                ref = table[name] = len(strings)
                strings.append(name)
            body.u32(ref)
    items = sorted(entries.items())
    body.u32(len(items))
    for (state, seq_id), (exit_state, events) in items:
        body.i64(state)
        body.u32(seq_id)
        body.i64(exit_state)
        body.u32(len(events))
        for evkind, sid, tok_idx, rel_depth in events:
            body.u8(evkind)
            body.u32(sid)
            body.u32(tok_idx)
            body.i64(rel_depth)
    w = _Writer()
    w.u32(len(strings))
    for s in strings:
        w.string(s)
    w.buf += body.buf
    return w.done()


def decode_memo_table(payload: bytes) -> tuple[list[tuple], dict]:
    r = _Reader(payload)
    n_strings = r.u32()
    if n_strings > len(payload):
        raise CodecError(f"implausible string table size {n_strings}")
    strings = [r.string() for _ in range(n_strings)]
    n_seqs = r.u32()
    if n_seqs > len(payload):
        raise CodecError(f"implausible sequence count {n_seqs}")
    seqs: list[tuple] = []
    for _ in range(n_seqs):
        n_toks = r.u32()
        key = []
        for _ in range(n_toks):
            kind = r.u8()
            if kind > 2:
                raise CodecError(f"bad token kind {kind} in memo sequence")
            ref = r.u32()
            if ref >= n_strings:
                raise CodecError("memo string reference out of range")
            key.append((kind, strings[ref]))
        seqs.append(tuple(key))
    entries: dict = {}
    n_entries = r.u32()
    if n_entries > len(payload):
        raise CodecError(f"implausible entry count {n_entries}")
    for _ in range(n_entries):
        state = r.i64()
        seq_id = r.u32()
        if seq_id >= n_seqs:
            raise CodecError("memo entry references unknown sequence")
        exit_state = r.i64()
        events = []
        for _ in range(r.u32()):
            evkind = r.u8()
            if evkind > 1:
                raise CodecError(f"bad memo event kind {evkind}")
            events.append((evkind, r.u32(), r.u32(), r.i64()))
        if (state, seq_id) in entries:
            raise CodecError("duplicate memo entry key")
        entries[(state, seq_id)] = (exit_state, tuple(events))
    r.expect_end()
    return seqs, entries


# ---------------------------------------------------------------------------
# token cache entry points
# ---------------------------------------------------------------------------


def encode_chunk_tokens(chunk_tokens) -> bytes:
    """Per-chunk pre-lexed token tuples (the XML registry cache)."""
    return _encode_token_payload(_MODE_CHUNKED, list(chunk_tokens))


def decode_chunk_tokens(payload: bytes) -> tuple[tuple[Token, ...], ...]:
    runs = _decode_token_payload(payload, _MODE_CHUNKED)
    return tuple(tuple(run) for run in runs)


def encode_tokens(tokens: list[Token]) -> bytes:
    """A flat token list (the JSON registry cache)."""
    return _encode_token_payload(_MODE_FLAT, [tokens])


def decode_tokens(payload: bytes) -> list[Token]:
    runs = _decode_token_payload(payload, _MODE_FLAT)
    if len(runs) != 1:
        raise CodecError(f"flat token payload holds {len(runs)} runs")
    return runs[0]


def encode_checkpoint(record: dict) -> bytes:
    """A stream checkpoint (:mod:`repro.stream.checkpoint`).

    Unlike the other artifact kinds — regular columnar structures — a
    checkpoint is an irregular, deeply nested snapshot (lexer tail,
    frame stack, pending events, a delta outbox), so the payload is a
    canonical JSON document inside the usual length-prefixed binary
    framing: the framing and schema stamp give the same fail-loud
    bounds checking, ``json.loads`` validates the interior, and the
    store's checksums cover corruption as for every other kind.
    """
    w = _Writer()
    w.u32(SCHEMAS["checkpoint"])
    w.string(json.dumps(record, separators=(",", ":"), sort_keys=True))
    return w.done()


def decode_checkpoint(payload: bytes) -> dict:
    r = _Reader(payload)
    version = r.u32()
    if version != SCHEMAS["checkpoint"]:
        raise CodecError(f"checkpoint schema v{version}, expected "
                         f"v{SCHEMAS['checkpoint']}")
    try:
        record = json.loads(r.string())
    except ValueError as exc:
        raise CodecError(f"checkpoint interior is not valid JSON: {exc}") from None
    r.expect_end()
    if not isinstance(record, dict):
        raise CodecError("checkpoint interior is not an object")
    return record
