"""Disk-backed artifact store — warm starts for restarted workers.

Every expensive precomputation (compiled kernel tables, feasible-path
tables, chunk splits, pre-lexed token caches) normally lives in
per-process in-memory LRUs, so a restarted or freshly sharded worker
re-lexes and recompiles everything.  The store persists those artifacts
under content-hash keys so the *next* process skips the work:

* **write-through** under the structural compile cache
  (:mod:`repro.xpath.compile_tables`): a compile-cache miss that
  compiles also publishes the encoded tables;
* **cache-aside** under the service :class:`DocumentRegistry`: chunk
  splits and token caches are looked up by document content hash
  before lexing, and published after.

Layout on disk::

    <root>/
      tmp/                          in-flight writes (unique names)
      <kind>/<key[:2]>/<key>.art    published artifacts

Every artifact is a fixed header followed by the payload::

    magic "RPAS" | format u16 | schema u16 | length u64 | sha256(payload)

Publication is **atomic**: payloads are written to ``tmp/`` under a
unique name, fsynced, then :func:`os.replace`'d into place — readers
racing a writer see either the complete old file, the complete new
file, or nothing; never a partial write.  Reads verify magic, format
and schema versions, payload length and checksum; any violation —
truncation, bit-flip, zero-fill, a version bump — is a **clean miss**
(counted as *invalid*, journalled) and never an exception or a
poisoned result.  Concurrent stores in many processes sharing one
directory need no coordination beyond the filesystem's atomic rename.

The store never raises into a query path: I/O errors on read degrade
to a miss, on write to a dropped publication (logged at WARNING).
"""

from __future__ import annotations

import logging
import os
import re
import struct
import threading
import time
from dataclasses import dataclass
from hashlib import sha256

from ..obs.journal import NULL_JOURNAL
from .codec import SCHEMAS

__all__ = ["ArtifactStore", "ArtifactInfo", "KINDS"]

log = logging.getLogger(__name__)

#: header: magic, container format version, per-kind schema version,
#: payload length, payload sha256
_HEADER = struct.Struct("<4sHHQ32s")
_MAGIC = b"RPAS"
#: container format version — the header layout itself
FORMAT_VERSION = 1

#: the artifact kinds this store understands (each with a schema
#: version in :data:`repro.store.codec.SCHEMAS`)
KINDS = tuple(sorted(SCHEMAS))

#: keys are hex content hashes; bound the charset/length so a key can
#: never traverse outside the store root
_KEY_RE = re.compile(r"^[0-9a-f]{8,128}$")

_SUFFIX = ".art"


@dataclass(slots=True, frozen=True)
class ArtifactInfo:
    """One on-disk artifact, as seen by :meth:`ArtifactStore.scan`."""

    kind: str
    key: str
    path: str
    n_bytes: int
    valid: bool
    reason: str  # "" when valid


class ArtifactStore:
    """Content-hash-keyed persistent artifact store over one directory.

    Thread- and process-safe for concurrent readers and writers: all
    cross-process coordination is atomic-rename publication; the
    in-process hit/miss/write/invalid counters are guarded by a lock.

    ``metrics``/``journal``/``obs_lock`` are optional observability
    hooks: when the query service owns the store it passes its
    :class:`MetricsRegistry`, its journal and the ``_obs_lock`` that
    serialises both; standalone users (CLI one-shots, benchmarks) can
    omit all three.
    """

    def __init__(
        self,
        root: str,
        metrics=None,
        journal=NULL_JOURNAL,
        obs_lock: threading.Lock | None = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self._tmp = os.path.join(self.root, "tmp")
        os.makedirs(self._tmp, exist_ok=True)
        self._journal = journal
        self._obs_lock = obs_lock or threading.Lock()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._invalid = 0
        self._seq = 0
        if metrics is not None:
            self._m_hits = metrics.counter(
                "repro_store_hits_total", "Artifact store read hits")
            self._m_misses = metrics.counter(
                "repro_store_misses_total", "Artifact store read misses")
            self._m_writes = metrics.counter(
                "repro_store_writes_total", "Artifacts published to the store")
            self._m_invalid = metrics.counter(
                "repro_store_invalid_total",
                "Artifacts rejected as corrupt, truncated or stale")
        else:
            self._m_hits = self._m_misses = None
            self._m_writes = self._m_invalid = None

    # -- paths ---------------------------------------------------------

    def _path(self, kind: str, key: str) -> str:
        if kind not in SCHEMAS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        if not _KEY_RE.match(key):
            raise ValueError(f"malformed artifact key {key!r}")
        return os.path.join(self.root, kind, key[:2], key + _SUFFIX)

    # -- observability -------------------------------------------------

    def _count(self, field: str, counter, event: str, **args) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        if counter is not None or self._journal.enabled:
            with self._obs_lock:
                if counter is not None:
                    counter.inc()
                if self._journal.enabled:
                    self._journal.record(event, **args)

    def counters(self) -> dict[str, int]:
        """Lifetime ``{"hits", "misses", "writes", "invalid"}`` counts."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "writes": self._writes,
                "invalid": self._invalid,
            }

    # -- read ----------------------------------------------------------

    def get(self, kind: str, key: str) -> bytes | None:
        """The payload published under ``(kind, key)``, or ``None``.

        Outcomes are disjoint: a verified payload is a **hit**; an
        absent file is a **miss**; anything unreadable or failing
        verification is **invalid** (counted separately, journalled
        with the reason) and also returns ``None``.  Never raises for
        on-disk state.
        """
        path = self._path(kind, key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            self._count("_misses", self._m_misses, "store_miss", artifact=kind)
            return None
        except OSError as exc:
            self._count("_invalid", self._m_invalid, "store_invalid",
                        artifact=kind, reason=f"io:{exc.errno}")
            return None
        payload, reason = self._verify(kind, data)
        if payload is None:
            self._count("_invalid", self._m_invalid, "store_invalid",
                        artifact=kind, reason=reason)
            return None
        self._count("_hits", self._m_hits, "store_hit",
                    artifact=kind, bytes=len(payload))
        return payload

    @staticmethod
    def _verify(kind: str, data: bytes) -> tuple[bytes | None, str]:
        """Check ``data`` against the header contract: (payload, reason)."""
        if len(data) < _HEADER.size:
            return None, "truncated-header"
        magic, fmt, schema, length, digest = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            return None, "bad-magic"
        if fmt != FORMAT_VERSION:
            return None, f"format-version:{fmt}"
        if schema != SCHEMAS[kind]:
            return None, f"schema-version:{schema}"
        payload = data[_HEADER.size:]
        if len(payload) != length:
            return None, "length-mismatch"
        if sha256(payload).digest() != digest:
            return None, "checksum-mismatch"
        return payload, ""

    # -- write ---------------------------------------------------------

    def put(self, kind: str, key: str, payload: bytes) -> bool:
        """Atomically publish ``payload`` under ``(kind, key)``.

        Safe to race with other writers of the same key (last rename
        wins; contents are equal by construction since keys are content
        hashes) and with readers (who only ever see complete files).
        Returns False — never raises — when the filesystem refuses.
        """
        path = self._path(kind, key)
        header = _HEADER.pack(
            _MAGIC, FORMAT_VERSION, SCHEMAS[kind],
            len(payload), sha256(payload).digest(),
        )
        with self._lock:
            self._seq += 1
            seq = self._seq
        tmp_path = os.path.join(
            self._tmp, f"{kind}-{key[:16]}-{os.getpid()}-{seq}.tmp")
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp_path, "wb") as fh:
                fh.write(header)
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except OSError as exc:
            log.warning("artifact store: dropped %s/%s: %s", kind, key, exc)
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self._count("_writes", self._m_writes, "store_write",
                    artifact=kind, bytes=len(payload))
        return True

    def invalidate(self, kind: str, key: str, reason: str) -> None:
        """Record a caller-side rejection (e.g. decode failure) and
        best-effort remove the artifact so it is not re-read."""
        self._count("_invalid", self._m_invalid, "store_invalid",
                    artifact=kind, reason=reason)
        try:
            os.unlink(self._path(kind, key))
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------

    def scan(self) -> list[ArtifactInfo]:
        """Every published artifact, verified (for ``verify``/``gc``)."""
        out: list[ArtifactInfo] = []
        for kind in KINDS:
            kind_dir = os.path.join(self.root, kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for fname in sorted(os.listdir(shard_dir)):
                    if not fname.endswith(_SUFFIX):
                        continue
                    path = os.path.join(shard_dir, fname)
                    key = fname[:-len(_SUFFIX)]
                    try:
                        with open(path, "rb") as fh:
                            data = fh.read()
                    except OSError as exc:
                        out.append(ArtifactInfo(
                            kind, key, path, 0, False, f"io:{exc.errno}"))
                        continue
                    payload, reason = self._verify(kind, data)
                    out.append(ArtifactInfo(
                        kind, key, path, len(data), payload is not None, reason))
        return out

    def gc(self, max_age: float | None = None) -> dict[str, int]:
        """Remove invalid artifacts and stale temp files.

        ``max_age`` (seconds) additionally prunes valid artifacts whose
        mtime is older — bounded disk for long-lived fleet stores.
        Returns ``{"removed", "kept", "tmp_removed"}``.
        """
        removed = kept = 0
        now = time.time()
        for info in self.scan():
            drop = not info.valid
            if not drop and max_age is not None:
                try:
                    drop = now - os.path.getmtime(info.path) > max_age
                except OSError:
                    drop = True
            if drop:
                try:
                    os.unlink(info.path)
                    removed += 1
                except OSError:
                    kept += 1
            else:
                kept += 1
        tmp_removed = 0
        try:
            stale = os.listdir(self._tmp)
        except OSError:
            stale = []
        for fname in stale:
            path = os.path.join(self._tmp, fname)
            try:
                # a live writer's temp file is at most seconds old
                if now - os.path.getmtime(path) > 300:
                    os.unlink(path)
                    tmp_removed += 1
            except OSError:
                pass
        return {"removed": removed, "kept": kept, "tmp_removed": tmp_removed}
