"""Well-formedness checking and DTD validation of token streams.

Two levels of checking, both stream-based (no tree is built):

* :func:`check_well_formed` — tags balance and nest properly, exactly
  one document element;
* :class:`Validator` — additionally checks each element's children
  against its declared content model.  Content models are compiled once
  into small Glushkov NFAs over child-element names (with ``#PCDATA``
  handled out-of-band, since mixed content is orderless in DTDs) and
  simulated with state sets, so validation is a single pass with
  per-element O(children × model-size) work.

The validator is what lets the test suite assert that every generated
benchmark document *actually conforms* to its DTD — a precondition for
the non-speculative soundness property (GAP-NonSpec may only prune
paths that are infeasible for *valid* inputs).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..grammar.model import (
    AnyContent,
    Choice,
    ContentModel,
    Empty,
    Grammar,
    Name,
    PCData,
    Repeat,
    Seq,
    UNBOUNDED,
)
from .tokens import Token

__all__ = [
    "ValidationError",
    "check_well_formed",
    "Validator",
    "ContentModelNFA",
    "compile_content_model",
]


class ValidationError(ValueError):
    """Raised when a token stream violates well-formedness or the DTD."""

    def __init__(self, message: str, offset: int = -1) -> None:
        if offset >= 0:
            message = f"{message} (at byte {offset})"
        super().__init__(message)
        self.offset = offset


def check_well_formed(tokens: Iterable[Token]) -> int:
    """Check nesting/balance; return the number of element tokens seen.

    Raises :class:`ValidationError` on the first violation.
    """
    stack: list[str] = []
    seen_root = False
    count = 0
    for tok in tokens:
        if tok.is_start:
            count += 1
            if not stack:
                if seen_root:
                    raise ValidationError("multiple document elements", tok.offset)
                seen_root = True
            stack.append(tok.name)
        elif tok.is_end:
            count += 1
            if not stack:
                raise ValidationError(f"unmatched end tag </{tok.name}>", tok.offset)
            if stack[-1] != tok.name:
                raise ValidationError(
                    f"mismatched end tag </{tok.name}>, expected </{stack[-1]}>", tok.offset
                )
            stack.pop()
        else:
            if not stack:
                raise ValidationError("character data outside the document element", tok.offset)
    if stack:
        raise ValidationError(f"unclosed element <{stack[-1]}> at end of input")
    if not seen_root:
        raise ValidationError("empty document")
    return count


# ---------------------------------------------------------------------------
# Content-model NFAs (Glushkov construction)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ContentModelNFA:
    """A position NFA over child-element names for one content model.

    State 0 is the start state; states ``1..n`` are the Glushkov
    positions (occurrences of element names in the model).
    ``transitions[state]`` maps a child name to the frozenset of
    successor positions.  ``accepting`` is the set of states in which
    the child sequence may legally end.
    """

    transitions: list[dict[str, frozenset[int]]]
    accepting: frozenset[int]
    allows_pcdata: bool
    allows_any: bool = False

    def initial(self) -> frozenset[int]:
        return frozenset((0,))

    def step(self, states: frozenset[int], child: str) -> frozenset[int]:
        out: set[int] = set()
        for s in states:
            out |= self.transitions[s].get(child, _EMPTY)
        return frozenset(out)

    def is_accepting(self, states: frozenset[int]) -> bool:
        return bool(states & self.accepting)


_EMPTY: frozenset[int] = frozenset()


@dataclass(slots=True)
class _Frag:
    """Glushkov attributes of a sub-model: nullable / first / last sets."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


def compile_content_model(model: ContentModel) -> ContentModelNFA:
    """Compile a content model into its Glushkov :class:`ContentModelNFA`.

    The construction is the textbook one: number every :class:`Name`
    occurrence (a *position*), compute nullable/first/last/follow sets
    recursively, then wire ``start → first`` and ``last(p) → follow(p)``
    edges labelled by position names.  It is exact for the full DTD
    content-model language, including nested repetitions.
    """
    if isinstance(model, AnyContent):
        return ContentModelNFA(
            transitions=[{}],
            accepting=frozenset((0,)),
            allows_pcdata=True,
            allows_any=True,
        )

    names: list[str] = [""]  # names[p] = element name at position p; index 0 unused
    follow: list[set[int]] = [set()]  # follow[p]

    def walk(m: ContentModel) -> _Frag:
        if isinstance(m, Name):
            names.append(m.name)
            follow.append(set())
            p = len(names) - 1
            return _Frag(False, frozenset((p,)), frozenset((p,)))
        if isinstance(m, (PCData, Empty, AnyContent)):
            return _Frag(True, _EMPTY, _EMPTY)
        if isinstance(m, Seq):
            acc = _Frag(True, _EMPTY, _EMPTY)
            for part in m.parts:
                f = walk(part)
                for p in acc.last:
                    follow[p] |= f.first
                acc = _Frag(
                    acc.nullable and f.nullable,
                    acc.first | f.first if acc.nullable else acc.first,
                    f.last | acc.last if f.nullable else f.last,
                )
            return acc
        if isinstance(m, Choice):
            nullable = False
            first: frozenset[int] = _EMPTY
            last: frozenset[int] = _EMPTY
            for part in m.parts:
                f = walk(part)
                nullable = nullable or f.nullable
                first |= f.first
                last |= f.last
            return _Frag(nullable, first, last)
        if isinstance(m, Repeat):
            f = walk(m.part)
            if m.hi == UNBOUNDED:
                for p in f.last:
                    follow[p] |= f.first
            return _Frag(f.nullable or m.lo == 0, f.first, f.last)
        raise TypeError(f"unknown content model node {m!r}")

    frag = walk(model)

    n_states = len(names)
    transitions: list[dict[str, frozenset[int]]] = [dict() for _ in range(n_states)]
    start_moves: dict[str, set[int]] = {}
    for p in frag.first:
        start_moves.setdefault(names[p], set()).add(p)
    transitions[0] = {name: frozenset(ps) for name, ps in start_moves.items()}
    for p in range(1, n_states):
        moves: dict[str, set[int]] = {}
        for q in follow[p]:
            moves.setdefault(names[q], set()).add(q)
        transitions[p] = {name: frozenset(ps) for name, ps in moves.items()}

    accepting = set(frag.last)
    if frag.nullable:
        accepting.add(0)
    return ContentModelNFA(
        transitions=transitions,
        accepting=frozenset(accepting),
        allows_pcdata=model.allows_pcdata(),
    )


class Validator:
    """Validate a token stream against a :class:`Grammar`.

    Undeclared elements are rejected when ``strict`` is true; for
    *partial* grammars (``strict=False``) an undeclared element and its
    entire subtree are accepted as-is — useful when sanity-checking
    speculative-mode corpora against extracted grammars.
    """

    def __init__(self, grammar: Grammar, strict: bool = True) -> None:
        self.grammar = grammar
        self.strict = strict
        self._nfas = {
            name: compile_content_model(decl.model) for name, decl in grammar.elements.items()
        }

    def validate(self, tokens: Iterable[Token]) -> int:
        """Validate; return the number of elements checked.

        Raises :class:`ValidationError` on the first violation (which
        includes well-formedness violations).
        """
        # stack entries: (tag, nfa-or-None, state-set)
        stack: list[tuple[str, ContentModelNFA | None, frozenset[int]]] = []
        checked = 0
        seen_root = False
        for tok in tokens:
            if tok.is_start:
                if not stack:
                    if seen_root:
                        raise ValidationError("multiple document elements", tok.offset)
                    seen_root = True
                    if tok.name != self.grammar.root:
                        raise ValidationError(
                            f"document element <{tok.name}> does not match DOCTYPE root "
                            f"<{self.grammar.root}>",
                            tok.offset,
                        )
                else:
                    tag, nfa, states = stack[-1]
                    if nfa is not None and not nfa.allows_any:
                        nxt = nfa.step(states, tok.name)
                        if not nxt:
                            raise ValidationError(
                                f"element <{tok.name}> not allowed here inside <{tag}>", tok.offset
                            )
                        stack[-1] = (tag, nfa, nxt)
                child_nfa = self._nfas.get(tok.name)
                if child_nfa is None and self.strict:
                    raise ValidationError(f"undeclared element <{tok.name}>", tok.offset)
                stack.append(
                    (tok.name, child_nfa, child_nfa.initial() if child_nfa else frozenset())
                )
            elif tok.is_end:
                if not stack or stack[-1][0] != tok.name:
                    expected = stack[-1][0] if stack else None
                    raise ValidationError(
                        f"mismatched end tag </{tok.name}>, expected </{expected}>", tok.offset
                    )
                tag, nfa, states = stack.pop()
                if nfa is not None and not nfa.allows_any and not nfa.is_accepting(states):
                    raise ValidationError(f"element <{tag}> has incomplete content", tok.offset)
                checked += 1
            else:  # text
                if not stack:
                    raise ValidationError(
                        "character data outside the document element", tok.offset
                    )
                tag, nfa, _states = stack[-1]
                if nfa is not None and not nfa.allows_pcdata:
                    raise ValidationError(f"character data not allowed inside <{tag}>", tok.offset)
        if stack:
            raise ValidationError(f"unclosed element <{stack[-1][0]}> at end of input")
        if not seen_root:
            raise ValidationError("empty document")
        return checked
