"""Split phase — cut an XML document into independently lexable chunks.

The parallel pushdown transducers (both the PP-Transducer baseline and
GAP) share the same three-phase structure: *split*, *parallel*, *join*.
This module implements the split phase.

A chunk is a half-open byte range ``[begin, end)`` of the document.
Boundaries are aligned to *tag boundaries*: every boundary except the
first is the offset of a top-level ``<`` character (as reported by
:func:`repro.xmlstream.lexer.iter_tag_offsets`), so every worker can
call :func:`~repro.xmlstream.lexer.lex_range` on its own range and the
concatenation of the per-chunk token streams equals the sequential
token stream.

The paper cuts into *equal-sized* chunks; we do the same (by bytes) and
then snap each cut point forward to the next tag boundary.  Degenerate
cases (more chunks than tags, boundaries colliding) collapse chunks
rather than producing empty ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexer import iter_tag_offsets

__all__ = ["Chunk", "split_chunks", "split_at_offsets"]


@dataclass(frozen=True, slots=True)
class Chunk:
    """One byte range of the document, assigned to one worker.

    ``index`` is the chunk's position in document order; chunk 0 is the
    only one that starts from the known initial state/stack.
    """

    index: int
    begin: int
    end: int

    def __len__(self) -> int:
        return self.end - self.begin


def split_chunks(text: str, n_chunks: int) -> list[Chunk]:
    """Split ``text`` into at most ``n_chunks`` tag-aligned chunks.

    The first chunk starts at byte 0 (covering any XML declaration and
    DOCTYPE prolog).  Cut points are placed at ``len(text) * k / n`` and
    snapped forward to the next top-level tag boundary.  Fewer than
    ``n_chunks`` chunks are returned when the document is too small for
    distinct boundaries; at least one chunk is always returned for a
    non-empty document.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(text)
    if n == 0:
        return []
    if n_chunks == 1:
        return [Chunk(0, 0, n)]

    targets = [n * k // n_chunks for k in range(1, n_chunks)]
    boundaries: list[int] = []
    it = iter_tag_offsets(text)
    current = next(it, None)
    for t in targets:
        # advance the tag-offset iterator to the first offset >= t
        while current is not None and current < t:
            current = next(it, None)
        if current is None:
            break
        if current > 0 and (not boundaries or current > boundaries[-1]):
            boundaries.append(current)
        # consume it so the next target cannot reuse the same boundary
        current = next(it, None)

    return split_at_offsets(n, boundaries)


def split_at_offsets(total_len: int, boundaries: list[int]) -> list[Chunk]:
    """Build the chunk list for explicit, sorted interior boundaries.

    Exposed separately so tests (and the speculative reprocessing logic,
    which re-splits a failed chunk) can construct precise layouts.
    """
    for a, b in zip(boundaries, boundaries[1:]):
        if b <= a:
            raise ValueError("boundaries must be strictly increasing")
    if boundaries and (boundaries[0] <= 0 or boundaries[-1] >= total_len):
        raise ValueError("boundaries must lie strictly inside the document")
    edges = [0, *boundaries, total_len]
    return [Chunk(i, edges[i], edges[i + 1]) for i in range(len(edges) - 1)]
