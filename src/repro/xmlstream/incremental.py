"""Incremental lexer — tokenise XML arriving in pieces.

The paper motivates on-the-fly querying with stream processing:
"process the queries on-the-fly without constructing any tree
structure ... with a constant memory requirement" (Section 2.1).  The
batch lexer needs the whole document string; this class accepts the
document in arbitrary pieces (network reads, file blocks) and yields
tokens as soon as they are complete, holding back only the unfinished
tail — so memory stays bounded by the largest single token, not the
document.

Offsets remain *global* (as if the pieces were concatenated), so
matches reported over a stream are directly comparable with batch
runs — a property the tests pin by equivalence with
:func:`repro.xmlstream.lexer.lex`.

Usage::

    lexer = IncrementalLexer()
    for piece in pieces:
        for token in lexer.feed(piece):
            ...
    for token in lexer.close():   # flush the tail, verify completeness
        ...
"""

from __future__ import annotations

from .lexer import LexError, _name_end, _skip_attributes
from .tokens import Token, TokenKind

__all__ = ["IncrementalLexer"]


class IncrementalLexer:
    """Streaming tokeniser; see module docstring."""

    def __init__(self) -> None:
        self._buf = ""
        self._base = 0  # global offset of _buf[0]
        self._closed = False

    @property
    def buffered(self) -> int:
        """Bytes currently held back (bounded by the largest token)."""
        return len(self._buf)

    def feed(self, piece: str) -> list[Token]:
        """Consume a piece; return every token completed by it."""
        if self._closed:
            raise ValueError("feed() after close()")
        buf = self._buf + piece
        out: list[Token] = []
        i = 0
        n = len(buf)
        while i < n:
            if buf[i] != "<":
                j = buf.find("<", i)
                if j == -1:
                    break  # text may continue in the next piece
                content = buf[i:j]
                if content.strip():
                    out.append(Token(TokenKind.TEXT, content, self._base + i))
                i = j
                continue
            advance = self._lex_tag(buf, i, out)
            if advance is None:
                break  # construct incomplete: hold from i
            i = advance
        self._buf = buf[i:]
        self._base += i
        return out

    def close(self) -> list[Token]:
        """Flush trailing text; raise if a construct is left unfinished."""
        self._closed = True
        buf, self._buf = self._buf, ""
        if not buf:
            return []
        if buf.lstrip().startswith("<") or "<" in buf:
            raise LexError("stream ended inside a markup construct", self._base)
        if buf.strip():
            return [Token(TokenKind.TEXT, buf, self._base)]
        return []

    # ------------------------------------------------------------------

    def _lex_tag(self, buf: str, i: int, out: list[Token]) -> int | None:
        """Lex one ``<...`` construct at ``i``; None if incomplete."""
        n = len(buf)
        if i + 1 >= n:
            return None
        nxt = buf[i + 1]
        base = self._base
        if nxt == "/":
            close = buf.find(">", i + 2)
            if close == -1:
                return None
            name = buf[i + 2 : _name_end(buf, i + 2)]
            if not name:
                raise LexError("empty end-tag name", base + i)
            out.append(Token(TokenKind.END, name, base + i))
            return close + 1
        if nxt == "!":
            return self._lex_decl(buf, i)
        if nxt == "?":
            close = buf.find("?>", i + 2)
            if close == -1:
                return None
            return close + 2
        # start tag: needs its terminating '>' in the buffer
        j = _name_end(buf, i + 1)
        name = buf[i + 1 : j]
        if j >= n:
            return None  # the name itself may continue
        if not name:
            raise LexError("empty start-tag name", base + i)
        try:
            k = _skip_attributes(buf, j)
        except LexError:
            return None  # an attribute value is split across pieces
        if k >= n:
            return None
        out.append(Token(TokenKind.START, name, base + i))
        if buf[k] == "/":
            if k + 1 >= n:
                # '/' at the very end: '/>' may straddle the boundary —
                # roll back the START we just appended and wait
                out.pop()
                return None
            out.append(Token(TokenKind.END, name, base + i))
            return k + 2
        return k + 1

    def _lex_decl(self, buf: str, i: int) -> int | None:
        """``<!...`` constructs: comments, CDATA, DOCTYPE; None if split."""
        if buf.startswith("<!--", i) or "<!--".startswith(buf[i : i + 4]):
            if not buf.startswith("<!--", i):
                return None  # the '<!--' itself is split
            close = buf.find("-->", i + 4)
            return None if close == -1 else close + 3
        if buf.startswith("<![CDATA[", i) or "<![CDATA[".startswith(buf[i : i + 9]):
            if not buf.startswith("<![CDATA[", i):
                return None
            close = buf.find("]]>", i + 9)
            return None if close == -1 else close + 3
        # DOCTYPE / other declaration with possible internal subset
        depth = 0
        j = i + 2
        n = len(buf)
        while j < n:
            ch = buf[j]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return j + 1
            j += 1
        return None
