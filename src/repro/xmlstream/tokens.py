"""Token types produced by the streaming XML lexer.

The pushdown-transducer pipeline never builds a DOM: the lexer turns raw
XML text into a flat stream of :class:`Token` values (start tags, end
tags, and text), and every downstream component (sequential transducer,
PP-Transducer baseline, GAP transducer) consumes that stream.

Tokens carry the byte offset of their first character in the original
document.  Offsets serve two purposes:

* **chunk framing** — the parallel split phase cuts the document at tag
  boundaries, and each worker lexes its own byte range; offsets are
  global, so match positions from different workers can be merged
  without coordination;
* **match identity** — a match is reported as the offset/index of the
  element's start tag, which also serves as the join key for the
  predicate filter phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "start_tag", "end_tag", "text_token"]


class TokenKind(enum.IntEnum):
    """Kind of a lexical token.

    ``IntEnum`` so that comparisons in the hot transducer loop are plain
    integer compares.
    """

    START = 0  #: start tag, e.g. ``<entry>`` (also emitted for ``<e/>``)
    END = 1  #: end tag, e.g. ``</entry>`` (also emitted for ``<e/>``)
    TEXT = 2  #: character data between tags (whitespace-only text is skipped)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token of the XML stream.

    Attributes
    ----------
    kind:
        One of :class:`TokenKind`.
    name:
        Element name for START/END tokens; the text content for TEXT
        tokens.
    offset:
        Byte offset of the token's first character in the document
        (the ``<`` for tags, the first character for text).
    """

    kind: TokenKind
    name: str
    offset: int

    @property
    def is_start(self) -> bool:
        return self.kind == TokenKind.START

    @property
    def is_end(self) -> bool:
        return self.kind == TokenKind.END

    @property
    def is_text(self) -> bool:
        return self.kind == TokenKind.TEXT

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == TokenKind.START:
            return f"<{self.name}>@{self.offset}"
        if self.kind == TokenKind.END:
            return f"</{self.name}>@{self.offset}"
        return f"text({self.name!r})@{self.offset}"


def start_tag(name: str, offset: int = 0) -> Token:
    """Convenience constructor for a START token (used heavily in tests)."""
    return Token(TokenKind.START, name, offset)


def end_tag(name: str, offset: int = 0) -> Token:
    """Convenience constructor for an END token."""
    return Token(TokenKind.END, name, offset)


def text_token(content: str, offset: int = 0) -> Token:
    """Convenience constructor for a TEXT token."""
    return Token(TokenKind.TEXT, content, offset)
