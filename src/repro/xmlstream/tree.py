"""Small attribute-aware XML tree parser.

The querying pipeline never needs attributes (the supported XPath
fragment has no attribute axes), so the streaming lexer skips them.
Two substrates *do* need them:

* the XML Schema reader (:mod:`repro.grammar.xsd_parser`) — XSD is
  itself XML whose meaning lives in ``name=`` / ``type=`` /
  ``minOccurs=`` attributes;
* tooling that inspects documents (the CLI's ``inspect`` command).

:func:`parse_tree` builds a minimal in-memory tree with attributes,
reusing the lexical conventions of :mod:`repro.xmlstream.lexer`
(comments, CDATA, processing instructions and the DOCTYPE prolog are
skipped; entity references are kept verbatim).  It is intentionally
separate from :class:`repro.xpath.reference.Element` — the oracle's
shape is dictated by XPath evaluation, this one by schema reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import LexError, _name_end, _skip_markup_decl

__all__ = ["TreeNode", "parse_tree"]

_WS = " \t\r\n"


@dataclass(slots=True)
class TreeNode:
    """One element with attributes, children and concatenated text."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["TreeNode"] = field(default_factory=list)
    text: str = ""

    def get(self, attr: str, default: str | None = None) -> str | None:
        return self.attrs.get(attr, default)

    def find(self, tag: str) -> "TreeNode | None":
        """First direct child with local name ``tag`` (prefix-insensitive)."""
        for c in self.children:
            if _local(c.tag) == tag:
                return c
        return None

    def findall(self, tag: str) -> list["TreeNode"]:
        """All direct children with local name ``tag`` (prefix-insensitive)."""
        return [c for c in self.children if _local(c.tag) == tag]

    def iter(self):
        """Self and all descendants, depth-first."""
        yield self
        for c in self.children:
            yield from c.iter()

    @property
    def local(self) -> str:
        return _local(self.tag)


def _local(tag: str) -> str:
    """Local part of a possibly-prefixed name (``xs:element`` → ``element``)."""
    return tag.rsplit(":", 1)[-1]


def parse_tree(text: str) -> TreeNode:
    """Parse a complete document into a :class:`TreeNode` tree."""
    i = 0
    n = len(text)
    root: TreeNode | None = None
    stack: list[TreeNode] = []
    while i < n:
        ch = text[i]
        if ch != "<":
            j = text.find("<", i)
            if j == -1:
                j = n
            content = text[i:j]
            if stack and content.strip():
                stack[-1].text += content
            i = j
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if nxt == "/":
            j = _name_end(text, i + 2)
            name = text[i + 2 : j]
            close = text.find(">", j)
            if close == -1:
                raise LexError("unterminated end tag", i)
            if not stack or stack[-1].tag != name:
                got = stack[-1].tag if stack else None
                raise LexError(f"mismatched </{name}>, open element is <{got}>", i)
            stack.pop()
            i = close + 1
        elif nxt in "!?":
            if nxt == "?":
                close = text.find("?>", i + 2)
                if close == -1:
                    raise LexError("unterminated processing instruction", i)
                i = close + 2
            else:
                i = _skip_markup_decl(text, i)
        else:
            node, i, self_closing = _parse_start_tag(text, i)
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise LexError("multiple document elements", i)
            if not self_closing:
                stack.append(node)
    if stack:
        raise LexError(f"unclosed element <{stack[-1].tag}>", n)
    if root is None:
        raise LexError("no document element", 0)
    return root


def _parse_start_tag(text: str, i: int) -> tuple[TreeNode, int, bool]:
    """Parse ``<name attr="v" ...>`` at ``i``; return (node, next, selfclosing)."""
    n = len(text)
    j = _name_end(text, i + 1)
    name = text[i + 1 : j]
    if not name:
        raise LexError("empty start-tag name", i)
    node = TreeNode(name)
    k = j
    while k < n:
        while k < n and text[k] in _WS:
            k += 1
        if k >= n:
            raise LexError("unterminated start tag", i)
        if text[k] == ">":
            return node, k + 1, False
        if text[k] == "/" and k + 1 < n and text[k + 1] == ">":
            return node, k + 2, True
        # attribute
        eq = k
        while eq < n and text[eq] not in "=" + _WS + "/>":
            eq += 1
        attr = text[k:eq]
        while eq < n and text[eq] in _WS:
            eq += 1
        if eq >= n or text[eq] != "=":
            raise LexError(f"attribute {attr!r} missing '='", k)
        q = eq + 1
        while q < n and text[q] in _WS:
            q += 1
        if q >= n or text[q] not in "\"'":
            raise LexError(f"attribute {attr!r} value is not quoted", k)
        quote = text[q]
        close = text.find(quote, q + 1)
        if close == -1:
            raise LexError(f"unterminated value for attribute {attr!r}", k)
        node.attrs[attr] = text[q + 1 : close]
        k = close + 1
    raise LexError("unterminated start tag", i)
