"""Streaming XML lexer with arbitrary-offset start support.

This is the lexical substrate for the whole system.  It is intentionally
a *lexer*, not a parser: it recognises start tags, end tags, empty
element tags, text, comments, processing instructions, CDATA sections
and the DOCTYPE prolog, and emits the flat :class:`~repro.xmlstream.tokens.Token`
stream the pushdown transducers consume.  It never builds a tree.

Two properties matter for parallelization:

* **restartability** — :func:`lex_range` can start lexing at any byte
  offset that is a tag boundary (the position of a ``<``).  The split
  phase (:mod:`repro.xmlstream.chunking`) aligns chunk boundaries to
  such positions, so each worker lexes its chunk independently and the
  concatenation of per-chunk token streams equals the sequential token
  stream (a property pinned by tests);
* **single pass, O(1) memory** — the lexer walks the text once with an
  index; it allocates only the tokens themselves.

Scope notes (documented simplifications, adequate for the benchmark
corpus and the paper's model):

* attributes are scanned past but not materialised — XPath attribute
  axes are outside the supported fragment (as in the paper);
* entity references in text are kept verbatim;
* whitespace-only text between tags is not emitted (the transducer
  treats text via plain transitions only, so insignificant whitespace
  would only add overhead).
"""

from __future__ import annotations

from collections.abc import Iterator

from .tokens import Token, TokenKind

__all__ = ["LexError", "lex", "lex_range", "iter_tag_offsets"]

_WS = " \t\r\n"

_NAME_END = set(_WS) | {">", "/", "<"}


class LexError(ValueError):
    """Raised on malformed XML at the lexical level.

    Carries the byte offset where the problem was detected so that error
    messages can point into multi-megabyte generated documents.
    """

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (at byte {offset})")
        self.offset = offset


def lex(text: str) -> Iterator[Token]:
    """Lex a complete XML document into a token stream.

    Equivalent to ``lex_range(text, 0, len(text))``.
    """
    return lex_range(text, 0, len(text))


def lex_range(text: str, start: int, end: int) -> Iterator[Token]:
    """Lex ``text[start:end]``, yielding tokens with *global* offsets.

    ``start`` must be either ``0``, or the offset of a ``<`` character
    (a tag boundary, as produced by the chunking module).  ``end`` is an
    exclusive bound: a token that *begins* before ``end`` is emitted in
    full even if it extends past ``end`` (tags are never split across
    chunks); a token beginning at or after ``end`` belongs to the next
    chunk.  This convention makes per-chunk token streams partition the
    sequential stream exactly.
    """
    i = start
    n = len(text)
    if end > n:
        end = n
    while i < end:
        ch = text[i]
        if ch == "<":
            nxt = text[i + 1] if i + 1 < n else ""
            if nxt == "/":
                # end tag </name>
                j = _name_end(text, i + 2)
                name = text[i + 2 : j]
                if not name:
                    raise LexError("empty end-tag name", i)
                close = text.find(">", j)
                if close == -1:
                    raise LexError("unterminated end tag", i)
                yield Token(TokenKind.END, name, i)
                i = close + 1
            elif nxt == "!":
                i = _skip_markup_decl(text, i)
            elif nxt == "?":
                close = text.find("?>", i + 2)
                if close == -1:
                    raise LexError("unterminated processing instruction", i)
                i = close + 2
            else:
                # start tag or empty-element tag
                j = _name_end(text, i + 1)
                name = text[i + 1 : j]
                if not name:
                    raise LexError("empty start-tag name", i)
                k = _skip_attributes(text, j)
                if k >= n:
                    raise LexError("unterminated start tag", i)
                yield Token(TokenKind.START, name, i)
                if text[k] == "/":
                    # <name/> — emit a matching END immediately
                    yield Token(TokenKind.END, name, i)
                    i = k + 2
                else:
                    i = k + 1
        else:
            j = text.find("<", i)
            if j == -1:
                j = n
            content = text[i:j]
            if content.strip():
                yield Token(TokenKind.TEXT, content, i)
            i = j


def iter_tag_offsets(text: str, start: int = 0) -> Iterator[int]:
    """Yield offsets of top-level ``<`` characters from ``start`` on.

    Offsets inside comments, CDATA sections, processing instructions,
    the DOCTYPE declaration and quoted attribute values are skipped —
    those are positions a chunk boundary must not land on.  Used by the
    split phase.
    """
    i = start
    n = len(text)
    while i < n:
        i = text.find("<", i)
        if i == -1:
            return
        nxt = text[i + 1] if i + 1 < n else ""
        if nxt == "!":
            i = _skip_markup_decl(text, i)
        elif nxt == "?":
            close = text.find("?>", i + 2)
            i = n if close == -1 else close + 2
        else:
            yield i
            if nxt == "/":
                close = text.find(">", i + 2)
                i = n if close == -1 else close + 1
            else:
                # skip the whole tag: a quoted attribute value may
                # contain '<', which must not become a boundary
                k = _skip_attributes(text, _name_end(text, i + 1))
                i = k + 1 if k < n else n


def _name_end(text: str, i: int) -> int:
    """Return the index one past the last character of a tag name."""
    n = len(text)
    j = i
    while j < n and text[j] not in _NAME_END:
        j += 1
    return j


def _skip_attributes(text: str, i: int) -> int:
    """Scan past attributes; return the index of ``>`` or of ``/`` in ``/>``.

    Quoted attribute values may contain ``>`` — this routine respects
    quotes, which a naive ``find('>')`` would not.
    """
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == ">":
            return i
        if ch == "/" and i + 1 < n and text[i + 1] == ">":
            return i
        if ch in ('"', "'"):
            close = text.find(ch, i + 1)
            if close == -1:
                raise LexError("unterminated attribute value", i)
            i = close + 1
        else:
            i += 1
    return i


def _skip_markup_decl(text: str, i: int) -> int:
    """Skip a ``<!...>`` construct starting at ``i``; return next index.

    Handles comments, CDATA sections and DOCTYPE declarations with an
    internal subset (nested ``[ ... ]``).
    """
    n = len(text)
    if text.startswith("<!--", i):
        close = text.find("-->", i + 4)
        if close == -1:
            raise LexError("unterminated comment", i)
        return close + 3
    if text.startswith("<![CDATA[", i):
        close = text.find("]]>", i + 9)
        if close == -1:
            raise LexError("unterminated CDATA section", i)
        return close + 3
    # DOCTYPE (or other declaration): honour an internal subset
    depth = 0
    j = i + 2
    while j < n:
        ch = text[j]
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return j + 1
        j += 1
    raise LexError("unterminated markup declaration", i)
