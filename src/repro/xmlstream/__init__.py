"""XML substrate: streaming lexer, chunk framing, validation.

This package contains everything the transducers need to consume XML
without building a DOM: token types (:mod:`~repro.xmlstream.tokens`),
a restartable streaming lexer (:mod:`~repro.xmlstream.lexer`), the
split-phase chunker (:mod:`~repro.xmlstream.chunking`) and a streaming
DTD validator (:mod:`~repro.xmlstream.validate`).
"""

from .chunking import Chunk, split_at_offsets, split_chunks
from .incremental import IncrementalLexer
from .lexer import LexError, iter_tag_offsets, lex, lex_range
from .tokens import Token, TokenKind, end_tag, start_tag, text_token
from .tree import TreeNode, parse_tree
from .validate import ValidationError, Validator, check_well_formed, compile_content_model

__all__ = [
    "Chunk",
    "IncrementalLexer",
    "LexError",
    "Token",
    "TokenKind",
    "TreeNode",
    "ValidationError",
    "Validator",
    "check_well_formed",
    "compile_content_model",
    "end_tag",
    "iter_tag_offsets",
    "lex",
    "lex_range",
    "parse_tree",
    "split_at_offsets",
    "split_chunks",
    "start_tag",
    "text_token",
]
