"""Per-request tracing — where one service request's time went.

The engine's spans (:mod:`repro.obs.tracer`) decompose one *pass*;
a service request additionally waits in the admission queue, rides a
batch-assembly window, shares a merged execution with its batch
companions and is demultiplexed back out.  A :class:`RequestTrace` is
the request-scoped record of that journey: monotonic marks at each
stage boundary, stitched to the owning batch's engine spans at
execution time.

The canonical stage sequence (see ``docs/SERVICE.md``)::

    admit ──▶ queue_wait ──▶ batch_assembly ──▶ execute ──▶ respond
    (enqueued)   (dequeued)      (exec_start)   (exec_end)  (responded)

* ``queue_wait`` — admitted, sitting in the bounded queue until the
  dispatcher picks the request up;
* ``batch_assembly`` — dequeued, waiting for the batch window to
  close, the worker to pick the group up and the warm engine fetch;
* ``execute`` — the merged-automaton pass the request shared;
* ``respond`` — demultiplexing and future delivery.

The stages partition the service-side interval, so they **sum to the
end-to-end latency exactly** (the tests pin this); the client
additionally observes its HTTP transport on top.

Zero-overhead contract (mirrors :class:`~repro.obs.tracer.NullTracer`):
when request tracing is disabled the scheduler carries the
:data:`NULL_REQUEST_TRACE` singleton, whose ``mark`` is a constant
no-op — per request the disabled path costs a handful of attribute
lookups and no allocation, proven within the CI overhead gate
(``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["RequestTrace", "NullRequestTrace", "NULL_REQUEST_TRACE", "STAGES"]

_clock = time.monotonic

#: the stage names, in lifecycle order (queryable surface + docs pin these)
STAGES = ("queue_wait", "batch_assembly", "execute", "respond")


@dataclass(slots=True)
class RequestTrace:
    """Monotonic stage marks for one admitted request.

    All timestamps come from :func:`time.monotonic` (the scheduler's
    deadline clock), so stage durations compose with the request's
    deadline budget.  ``chunk_spans`` holds ``[name, start_ms, dur_ms]``
    rows copied from the owning batch's engine tracer — the stitch
    point between request-level and chunk-level observability.
    """

    enabled = True

    enqueued: float = field(default_factory=_clock)
    dequeued: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    responded: float = 0.0
    #: id of the merged pass that served this request (-1 = never ran)
    batch_seq: int = -1
    #: ``[name, start_ms_into_exec, dur_ms]`` rows from the batch tracer
    chunk_spans: list = field(default_factory=list)

    def mark(self, stage: str, now: float | None = None) -> None:
        """Stamp one lifecycle boundary (idempotent per stage)."""
        setattr(self, stage, _clock() if now is None else now)

    # -- derived ------------------------------------------------------

    @property
    def total(self) -> float:
        """End-to-end service-side latency (admission → response)."""
        return max(0.0, self.responded - self.enqueued)

    def stage_seconds(self) -> dict[str, float]:
        """The span breakdown; stages sum exactly to :attr:`total`.

        A request that died early (expired, rejected at dispatch)
        reports zero for the stages it never reached: each boundary
        falls back to the previous one when it was never marked.
        """
        t0 = self.enqueued
        t1 = self.dequeued or t0
        t2 = self.exec_start or t1
        t3 = self.exec_end or t2
        t4 = self.responded or t3
        return {
            "queue_wait": max(0.0, t1 - t0),
            "batch_assembly": max(0.0, t2 - t1),
            "execute": max(0.0, t3 - t2),
            "respond": max(0.0, t4 - t3),
        }

    def deadline_fraction(self, deadline: float | None) -> float | None:
        """Fraction of the deadline budget the request consumed.

        ``deadline`` is the request's *absolute* monotonic deadline;
        the budget is ``deadline - enqueued``.  > 1.0 means the
        request blew its deadline; ``None`` when it had none.
        """
        if deadline is None:
            return None
        budget = deadline - self.enqueued
        if budget <= 0:
            return float("inf")
        return self.total / budget

    def to_dict(self) -> dict:
        """JSON-ready breakdown (slow log rows, ``/varz``, journal)."""
        out: dict = {
            "total_ms": round(self.total * 1e3, 3),
            "stages_ms": {
                k: round(v * 1e3, 3) for k, v in self.stage_seconds().items()
            },
        }
        if self.batch_seq >= 0:
            out["batch_seq"] = self.batch_seq
        if self.chunk_spans:
            out["chunk_spans"] = [list(row) for row in self.chunk_spans]
        return out


class NullRequestTrace:
    """Request tracing disabled: every mark is a constant no-op."""

    enabled = False
    enqueued = 0.0
    dequeued = 0.0
    exec_start = 0.0
    exec_end = 0.0
    responded = 0.0
    batch_seq = -1
    chunk_spans: tuple = ()
    total = 0.0

    def mark(self, stage: str, now: float | None = None) -> None:
        return None

    def stage_seconds(self) -> dict[str, float]:
        return {}

    def deadline_fraction(self, deadline: float | None) -> float | None:
        return None

    def to_dict(self) -> dict:
        return {}


#: the process-wide disabled trace (requests default to this)
NULL_REQUEST_TRACE = NullRequestTrace()
