"""Span exporters: Chrome-tracing JSON and the per-chunk timeline table.

The Chrome trace event format (the subset emitted here: complete ``X``
events plus ``M`` thread-name metadata) loads directly into
``chrome://tracing`` and https://ui.perfetto.dev.  Timestamps are
microseconds relative to the earliest span, one lane (``tid``) per
chunk worker plus lane 0 for the driver phases.

:func:`format_timeline` renders the same spans as the aligned text
table ``repro profile`` prints: every phase and chunk span in start
order, with the counter snapshots (tokens, switches, starting paths)
the workers attached.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from .tracer import Span

__all__ = ["chrome_trace", "write_chrome_trace", "chunk_timeline", "format_timeline"]


def chrome_trace(spans: Sequence[Span], pid: int = 1) -> dict:
    """Spans → a Chrome-tracing/Perfetto JSON object (dict)."""
    base = min((s.t0 for s in spans), default=0.0)
    events: list[dict] = []
    tids = sorted({s.tid for s in spans})
    for tid in tids:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "driver" if tid == 0 else f"worker-{tid - 1}"},
        })
    for s in sorted(spans, key=lambda s: (s.t0, -s.duration)):
        events.append({
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": round((s.t0 - base) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": pid,
            "tid": s.tid,
            "args": dict(s.args),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str, pid: int = 1) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, pid=pid), fh, indent=1)
        fh.write("\n")


def chunk_timeline(spans: Sequence[Span]) -> tuple[list[str], list[list[object]]]:
    """Spans → (headers, rows) for the per-chunk timeline table.

    Rows are ordered by start time; nested spans (a worker's ``lex``
    inside its ``chunk[i]``) are indented by depth.  The counter
    columns come from the args snapshots the instrumentation attached
    (absent values render as ``-``).
    """
    headers = ["span", "start ms", "dur ms", "tokens", "switches", "paths"]
    if not spans:
        return headers, []
    base = min(s.t0 for s in spans)
    rows: list[list[object]] = []
    for s in sorted(spans, key=lambda s: (s.t0, -s.duration)):
        args = s.args
        rows.append([
            "  " * s.depth + s.name,
            (s.t0 - base) * 1e3,
            s.duration * 1e3,
            args.get("tokens"),
            args.get("switches"),
            args.get("starting_paths"),
        ])
    return headers, rows


def format_timeline(spans: Sequence[Span], title: str | None = None) -> str:
    """Render the per-chunk timeline as an aligned text table."""
    from ..bench.reporting import format_table  # lazy: avoids an import cycle

    headers, rows = chunk_timeline(spans)
    return format_table(headers, rows, title=title)
