"""A low-overhead stack-sampling profiler (the continuous half of
``repro profile``).

A daemon thread wakes ~50 times a second (configurable), snapshots
every thread's Python frame via ``sys._current_frames()`` and folds
each stack into a :class:`SampleProfile` — a dict of collapsed stacks
to sample counts.  Because the cost lives in the sampler thread (a
frame walk per tick), the *profiled* code pays nothing beyond normal
GIL arbitration, which is what lets the service leave it on in
production (the CI overhead gate pins the bill).

Attribution: frame labels are ``module:function`` with repro-internal
files shortened to their dotted module path, and every sample is also
bucketed into a **pipeline stage** (``lex`` / ``kernel`` /
``transduce`` / ``compile`` / ``service`` / ``store`` / ``other``) by
the deepest repro frame on the stack — the per-stage table ``repro
profile --sample`` prints.

Output is **deterministic** for a given set of samples: collapsed
stacks are sorted lines (``frame;frame;frame count``, the flamegraph
collapsed format), independent of hash seed and accumulation order.
Profiles are plain picklable dicts, so process-pool workers sample
themselves and ship the result back inside
:class:`~repro.transducer.mapping.ChunkResult` — the same transport
spans and journal events use.
"""

from __future__ import annotations

import sys
import threading
import time
from collections.abc import Mapping

__all__ = ["SampleProfile", "StackSampler", "STAGES", "stage_of_label"]

#: default sampling interval (≈50 Hz)
DEFAULT_INTERVAL = 0.02

#: stack-depth bound per sample (deeper frames are dropped at the root)
MAX_DEPTH = 64

#: the attribution buckets, deepest-repro-frame wins
STAGES = ("lex", "kernel", "transduce", "compile", "service", "store", "other")

#: repro module-path prefix → stage (first match wins, most specific first)
_STAGE_PREFIXES = (
    ("repro.xmlstream", "lex"),
    ("repro.jsonstream", "lex"),
    ("repro.core.kernel", "kernel"),
    ("repro.xpath.subseq", "kernel"),
    ("repro.transducer", "transduce"),
    ("repro.xpath.compile_tables", "compile"),
    ("repro.xpath", "compile"),
    ("repro.service", "service"),
    ("repro.store", "store"),
)

_SEP = "/repro/"


def _module_of(filename: str) -> str:
    """Shorten a source path to a dotted repro module (or its basename)."""
    idx = filename.rfind(_SEP)
    if idx >= 0:
        tail = filename[idx + len(_SEP):]
        if tail.endswith(".py"):
            tail = tail[:-3]
        if tail.endswith("/__init__"):
            tail = tail[: -len("/__init__")]
        return "repro." + tail.replace("/", ".") if tail else "repro"
    base = filename.rsplit("/", 1)[-1]
    return base[:-3] if base.endswith(".py") else base


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{_module_of(code.co_filename)}:{code.co_name}"


def stage_of_label(label: str) -> str | None:
    """The pipeline stage one frame label belongs to (None = not repro)."""
    module = label.partition(":")[0]
    if not module.startswith("repro"):
        return None
    for prefix, stage in _STAGE_PREFIXES:
        if module.startswith(prefix):
            return stage
    return "other"


def collapse_frame(frame) -> tuple[str, ...]:
    """One thread's stack as a root-first label tuple (bounded depth)."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SampleProfile:
    """Collapsed-stack sample counts; mergeable, picklable, deterministic.

    Thread-safe for concurrent :meth:`record`/:meth:`merge` against
    renders — the sampler thread feeds it while ``/profilez`` reads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self.total = 0

    def __len__(self) -> int:
        return len(self._counts)

    def record(self, stack: tuple[str, ...], n: int = 1) -> None:
        if not stack:
            return
        with self._lock:
            self._counts[stack] = self._counts.get(stack, 0) + n
            self.total += n

    def merge(self, other: "SampleProfile | Mapping[str, int]") -> None:
        """Fold another profile (or its :meth:`to_dict` form) into this one."""
        if isinstance(other, SampleProfile):
            with other._lock:
                items = [(";".join(k), v) for k, v in other._counts.items()]
        else:
            items = list(other.items())
        with self._lock:
            for key, count in items:
                stack = tuple(key.split(";"))
                self._counts[stack] = self._counts.get(stack, 0) + count
                self.total += count

    def to_dict(self) -> dict[str, int]:
        """Picklable form: ``"frame;frame;frame" -> count``."""
        with self._lock:
            return {";".join(k): v for k, v in self._counts.items()}

    def collapsed(self, min_count: int = 1) -> str:
        """The flamegraph collapsed format: sorted ``stack count`` lines.

        Sorted lexicographically by stack, so the output is identical
        for identical samples whatever the hash seed or merge order.
        """
        with self._lock:
            items = sorted(
                (";".join(stack), count)
                for stack, count in self._counts.items()
                if count >= min_count
            )
        return "\n".join(f"{key} {count}" for key, count in items) + (
            "\n" if items else ""
        )

    def stages(self) -> dict[str, int]:
        """Samples per pipeline stage (deepest repro frame attributes)."""
        out = {stage: 0 for stage in STAGES}
        with self._lock:
            items = list(self._counts.items())
        for stack, count in items:
            stage = None
            for label in reversed(stack):  # deepest repro frame wins
                stage = stage_of_label(label)
                if stage is not None:
                    break
            out[stage or "other"] += count
        return out

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest leaf frames ``(label, samples)``, ties by name."""
        leaves: dict[str, int] = {}
        with self._lock:
            for stack, count in self._counts.items():
                leaves[stack[-1]] = leaves.get(stack[-1], 0) + count
        return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


class StackSampler:
    """The sampling daemon thread over ``sys._current_frames()``.

    ``only_ident`` restricts sampling to one thread (how chunk workers
    profile exactly their own execution — in a thread pool, sampling
    the whole process from every worker would multiply-count siblings);
    the default samples every thread except the sampler itself.
    """

    def __init__(
        self,
        profile: SampleProfile | None = None,
        interval: float = DEFAULT_INTERVAL,
        only_ident: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.profile = profile if profile is not None else SampleProfile()
        self.interval = interval
        self.only_ident = only_ident
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0
        self.started_mono: float | None = None

    def sample_once(self, frames: Mapping[int, object] | None = None) -> int:
        """Take one sample of every eligible thread; returns stacks folded."""
        if frames is None:
            frames = sys._current_frames()
        me = threading.get_ident()
        folded = 0
        for ident, frame in frames.items():
            if ident == me:
                continue
            if self.only_ident is not None and ident != self.only_ident:
                continue
            self.profile.record(collapse_frame(frame))
            folded += 1
        self.samples += 1
        return folded

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "StackSampler":
        if self._thread is None:
            self._stop.clear()
            self.started_mono = time.monotonic()
            self._thread = threading.Thread(
                target=self._run, name="repro-stack-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
