"""Metrics registry — counters, gauges and histograms with exporters.

A deliberately small, dependency-free subset of the Prometheus client
data model:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — cumulative-bucket distribution with ``_sum``
  and ``_count``.

Metrics live in a :class:`MetricsRegistry`, keyed by
``(name, sorted labels)``; ``registry.counter(name, help, **labels)``
is get-or-create, so instrumentation sites never need to check
registration.  Two exporters:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` headers, escaped label values, histogram
  ``le`` buckets ending in ``+Inf``);
* :meth:`MetricsRegistry.to_json` — a flat JSON-friendly list of
  samples for the benchmark trajectory files.

:func:`collect_run_metrics` maps a run's
:class:`~repro.core.stats.RunStats` (and optionally its spans and
matches) onto the ``repro_*`` metric names documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "collect_run_metrics",
    "table_registry",
]

#: default histogram buckets (seconds), tuned for chunk-scale latencies
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    """Integers render as integers, floats with full ``repr`` precision."""
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class _Metric:
    """Shared identity (name, help, labels) of one registered metric."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = labels

    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(self.labels.items())
        )
        return "{" + inner + "}"

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """``(sample name, labels, value)`` rows for the exporters."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        return [(self.name, self.labels, self.value)]


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: dict[str, str]) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        return [(self.name, self.labels, self.value)]


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus ``le`` semantics).

    ``observe`` is thread-safe: service instrumentation records from
    scheduler workers and HTTP handler threads concurrently, and a
    torn ``sum``/``count``/bucket triple would corrupt every quantile
    derived from it.  The lock is uncontended in the common case (one
    short critical section per observation).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * len(self.buckets)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect_left(self.buckets, value)
        with self._lock:
            self.sum += value
            self.count += 1
            if i < len(self._bucket_counts):
                self._bucket_counts[i] += 1

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts (the exported ``le`` values)."""
        out: list[int] = []
        running = 0
        with self._lock:
            counts = list(self._bucket_counts)
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (``0 <= q <= 1``).

        The classic Prometheus ``histogram_quantile`` estimator:
        find the first bucket whose cumulative count reaches
        ``q * count`` and interpolate linearly inside it (the lower
        edge of the first bucket is 0).  Observations above the last
        finite bound clamp to that bound.  Returns ``None`` while the
        histogram is empty.

        The estimate is exact whenever the underlying values sit
        uniformly inside their buckets (the estimator's model); the
        unit tests pin it against hand-computed interpolations on
        synthetic bucket fills.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            counts = list(self._bucket_counts)
        if total == 0:
            return None
        rank = q * total
        running = 0.0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            prev = running
            running += c
            if running >= rank:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                if rank <= prev:  # quantile falls on the bucket edge
                    return lo if i > 0 else hi
                return lo + (hi - lo) * (rank - prev) / c
        # the remaining mass is above the last finite bound: clamp
        return self.buckets[-1]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict[str, float | None]:
        """Several quantiles at once, keyed ``p50``-style for exports."""
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def summary(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """``count``/``sum`` plus the requested quantiles (one JSON row)."""
        with self._lock:
            count, total = self.count, self.sum
        out: dict = {"count": count, "sum": round(total, 6)}
        for key, value in self.quantiles(qs).items():
            out[key] = None if value is None else round(value, 6)
        return out

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        rows: list[tuple[str, dict[str, str], float]] = []
        for bound, cum in zip(self.buckets, self.cumulative_counts()):
            rows.append((f"{self.name}_bucket", {**self.labels, "le": _fmt_value(bound)}, cum))
        rows.append((f"{self.name}_bucket", {**self.labels, "le": "+Inf"}, self.count))
        rows.append((f"{self.name}_sum", self.labels, self.sum))
        rows.append((f"{self.name}_count", self.labels, self.count))
        return rows


class MetricsRegistry:
    """Ordered collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def _get(self, cls, name: str, help: str, labels: dict[str, str], **kwargs) -> _Metric:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name}")
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help, {k: str(v) for k, v in labels.items()}, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- exporters -----------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self._metrics.values():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                suffix = ""
                if labels:
                    inner = ",".join(
                        f'{k}="{_escape_label(str(v))}"'
                        for k, v in sorted(labels.items())
                    )
                    suffix = "{" + inner + "}"
                lines.append(f"{sample_name}{suffix} {_fmt_value(value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON-friendly dump: one entry per metric, samples inlined."""
        out: list[dict] = []
        for metric in self._metrics.values():
            entry: dict = {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["buckets"] = {
                    _fmt_value(b): c
                    for b, c in zip(metric.buckets, metric.cumulative_counts())
                }
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"metrics": out}


# ---------------------------------------------------------------------------
# builders


def collect_run_metrics(
    stats,
    matches: dict[str, list[int]] | None = None,
    spans: Sequence = (),
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Populate a registry from one run's stats (+ optional spans/matches).

    ``stats`` is a :class:`~repro.core.stats.RunStats` (duck-typed: it
    needs ``counters``, ``chunk_counters`` and the derived properties).
    """
    reg = registry if registry is not None else MetricsRegistry()
    c = stats.counters
    reg.counter("repro_bytes_lexed_total", "Bytes of raw input lexed").inc(c.bytes_lexed)
    reg.counter("repro_tokens_total", "Tokens processed, by execution mode",
                mode="stack").inc(c.stack_tokens)
    reg.counter("repro_tokens_total", "Tokens processed, by execution mode",
                mode="tree").inc(c.tree_tokens)
    reg.counter("repro_tree_path_steps_total",
                "Per-token path-maintenance work in tree mode").inc(c.tree_path_steps)
    reg.counter("repro_switches_total",
                "Runtime data-structure switches (tree <-> stack)").inc(c.switches)
    reg.counter("repro_divergences_total", "Underflow pop divergences").inc(c.divergences)
    reg.counter("repro_paths_eliminated_total",
                "Path groups killed by feasibility checks").inc(c.paths_eliminated)
    reg.counter("repro_paths_converged_total",
                "Path groups merged by convergence").inc(c.paths_converged)
    reg.counter("repro_starting_paths_total",
                "Execution paths chunks started with (summed)").inc(c.starting_paths)
    reg.counter("repro_chunks_total", "Chunks processed").inc(c.chunks)
    reg.counter("repro_degraded_lookups_total",
                "Feasible-table misses degraded to full enumeration").inc(c.degraded_lookups)
    reg.counter("repro_reprocessed_tokens_total",
                "Tokens re-executed sequentially after misspeculation").inc(c.reprocessed_tokens)
    reg.counter("repro_misspeculations_total",
                "Join-time misspeculations detected").inc(c.misspeculations)
    reg.counter("repro_join_steps_total", "Join-phase linking steps").inc(c.join_steps)
    reg.counter("repro_retries_total",
                "Chunk attempts re-scheduled by the resilience layer").inc(c.retries)
    reg.counter("repro_timeouts_total",
                "Chunk attempts that exceeded the chunk timeout").inc(c.timeouts)
    reg.counter("repro_fallbacks_total",
                "Chunks re-executed on the serial fallback").inc(c.fallbacks)
    # process-wide compile-cache counters (lazy import: metrics must not
    # pull the xpath package in at module load)
    from ..xpath.compile_tables import compile_cache_info

    cache = compile_cache_info()
    reg.counter("repro_compile_cache_hits_total",
                "Dense-table compile cache hits (process-wide)").inc(cache["hits"])
    reg.counter("repro_compile_cache_misses_total",
                "Dense-table compile cache misses (process-wide)").inc(cache["misses"])
    memo = cache["memo"]
    reg.counter("repro_memo_hits_total",
                "Structural memo replays in the dense kernel (process-wide)"
                ).inc(memo["hits"])
    reg.counter("repro_memo_misses_total",
                "Structural memo lookups that recorded a new entry "
                "(process-wide)").inc(memo["misses"])
    reg.counter("repro_memo_rejects_total",
                "Hash-colliding near-repeats rejected by exact comparison "
                "(process-wide)").inc(memo["rejects"])
    reg.counter("repro_memo_evictions_total",
                "Memo entries evicted at capacity (process-wide)"
                ).inc(memo["evictions"])
    reg.gauge("repro_memo_entries",
              "Live memo entries across registered tables (process-wide)"
              ).set(memo["entries"])
    reg.gauge("repro_memo_sequences",
              "Interned structural subsequences (process-wide)"
              ).set(memo["sequences"])
    reg.gauge("repro_mapping_entries", "Mapping entries at chunk completion").set(c.mapping_entries)
    reg.gauge("repro_avg_starting_paths",
              "Average starting execution paths per chunk (Table 5)").set(stats.avg_starting_paths)
    reg.gauge("repro_speculation_accuracy",
              "Fraction of speculated chunks joined without reprocessing (Table 6)"
              ).set(stats.speculation_accuracy)
    reg.gauge("repro_reprocessing_cost",
              "Reprocessed fraction of the token work (Table 6)").set(stats.reprocessing_cost)
    if matches is not None:
        for query, offsets in matches.items():
            reg.counter("repro_matches_total", "Matches found, per query",
                        query=query).inc(len(offsets))
    for span in spans:
        if span.cat == "chunk":
            if span.name.startswith("chunk["):
                reg.histogram("repro_chunk_seconds",
                              "Wall-clock duration of one chunk's parallel-phase work"
                              ).observe(span.duration)
        elif span.cat == "resilience":
            # retry[i] / fallback[i] spans aggregate per kind, not per
            # chunk — chunk indexes would be unbounded label cardinality
            kind = span.name.split("[", 1)[0]
            reg.counter("repro_resilience_seconds_total",
                        "Wall-clock time spent in recovery, by kind",
                        kind=kind).inc(span.duration)
        else:
            reg.counter("repro_phase_seconds_total",
                        "Wall-clock time spent per pipeline phase",
                        phase=span.name).inc(span.duration)
    return reg


def table_registry(
    artifact: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Benchmark table → one gauge per numeric cell.

    Each row's first column names the row; every numeric cell becomes
    ``repro_bench_value{artifact=…,row=…,col=…}`` so the perf
    trajectory is queryable without parsing ASCII tables.
    """
    reg = registry if registry is not None else MetricsRegistry()
    cols = list(headers[1:]) if headers else []
    for row in rows:
        row = list(row)
        label = str(row[0]) if row else ""
        for i, cell in enumerate(row[1:]):
            col = str(cols[i]) if i < len(cols) else str(i + 1)
            if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                reg.gauge("repro_bench_value", "Benchmark table cell",
                          artifact=artifact, row=label, col=col).set(float(cell))
    return reg
