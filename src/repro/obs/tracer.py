"""Tracing spans — wall-clock instrumentation of the pipeline phases.

A :class:`Span` is one named interval of wall-clock time plus a free
``args`` dict for counter snapshots; a :class:`Tracer` collects them.
The instrumented code uses one idiom everywhere::

    with tracer.span("join", cat="phase") as sp:
        ...                        # the timed work
        sp.args["misspeculations"] = totals.misspeculations

The default tracer on every engine is the :data:`NULL_TRACER`
singleton, whose ``span`` call is a handful of attribute lookups that
allocate nothing and record nothing — the hot paths (the per-token
transducer loops) are never instrumented at all, so disabled tracing
leaves engine results and counters byte-identical to an uninstrumented
build.

Spans survive process boundaries: they are plain picklable dataclasses,
and per-worker spans travel back inside
:class:`~repro.transducer.mapping.ChunkResult` to be merged into the
coordinating tracer at join time.  Timestamps come from
:func:`time.perf_counter`, which on the supported platforms is a
system-wide monotonic clock, so worker spans and driver spans share a
timeline.

``tid`` is the span's *lane* for timeline rendering: 0 is the driver,
``1 + chunk_index`` is the worker that processed that chunk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

_clock = time.perf_counter


@dataclass(slots=True)
class Span:
    """One named wall-clock interval with attached attributes."""

    name: str
    t0: float
    t1: float = 0.0
    cat: str = "phase"
    tid: int = 0
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.t1 - self.t0


class _SpanHandle:
    """Context manager that times one span and records it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._depth += 1
        self.span.t0 = _clock()
        return self.span

    def __exit__(self, *exc: object) -> None:
        self.span.t1 = _clock()
        self._tracer._depth -= 1
        self._tracer.spans.append(self.span)


class Tracer:
    """Collects spans; share one per run (or one per worker, merged)."""

    enabled = True

    def __init__(self, tid: int = 0) -> None:
        self.spans: list[Span] = []
        self.tid = tid
        self._depth = 0

    def span(self, name: str, cat: str = "phase", **args: object) -> _SpanHandle:
        """Open a timed span; use as a context manager."""
        return _SpanHandle(
            self,
            Span(name=name, t0=0.0, cat=cat, tid=self.tid, depth=self._depth,
                 args=dict(args) if args else {}),
        )

    def extend(self, spans: list[Span]) -> None:
        """Merge spans collected elsewhere (e.g. by a worker process)."""
        self.spans.extend(spans)

    # -- queries over collected spans ---------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of all spans with ``name``, in seconds."""
        return sum(s.duration for s in self.spans if s.name == name)

    def chunk_spans(self) -> list[Span]:
        """The per-chunk spans, in chunk order."""
        out = [s for s in self.spans if s.cat == "chunk" and s.name.startswith("chunk[")]
        out.sort(key=lambda s: (s.tid, s.t0))
        return out


class _NullSpan:
    """The span stand-in handed out by :class:`NullTracer`.

    ``args`` returns a fresh throwaway dict on each access, so callers
    can mutate it unconditionally and the write costs one small
    allocation at most — no state accumulates.
    """

    __slots__ = ()

    @property
    def args(self) -> dict:
        return {}


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Tracing disabled: every span is the same do-nothing handle."""

    enabled = False
    spans: tuple = ()
    tid = 0

    def span(self, name: str, cat: str = "phase", **args: object) -> _NullHandle:
        return _NULL_HANDLE

    def extend(self, spans: list[Span]) -> None:
        pass

    def by_name(self, name: str) -> list[Span]:
        return []

    def total(self, name: str) -> float:
        return 0.0

    def chunk_spans(self) -> list[Span]:
        return []


#: the process-wide disabled tracer (engines default to this)
NULL_TRACER = NullTracer()
