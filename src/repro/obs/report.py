"""Run reports and chunk explanations over the flight-recorder stream.

Turns one run's observability artefacts — tracing spans
(:mod:`repro.obs.tracer`), the structured event journal
(:mod:`repro.obs.journal`) and the run statistics
(:mod:`repro.core.stats`) — into three human-facing products:

* :func:`build_report` + :func:`render_terminal` — the aligned-text run
  report behind ``repro report`` (chunk timeline, per-chunk path
  lifecycle, the Table 5/6 profile);
* :func:`render_html` — the same report as a **self-contained,
  deterministic** single HTML file: inline CSS only, no scripts, no
  network assets, and byte-identical output for identical input (the
  renderer is a pure function of the :class:`RunReport`);
* :func:`explain_chunk` + :func:`format_explain` — ``repro explain``:
  replay one chunk's journal tag-by-tag and show where paths were
  spawned, killed, converged and switched.

The HTML palette follows the repo's chart conventions: chart-chrome
inks for all text, one categorical series hue for the bars (a single
series needs no legend), light and dark values swapped by
``prefers-color-scheme`` with an explicit ``data-theme`` override.
"""

from __future__ import annotations

import html as _html
from collections.abc import Sequence
from dataclasses import dataclass, field

from .journal import Event, Journal

__all__ = [
    "ChunkExplanation",
    "RunReport",
    "build_report",
    "explain_chunk",
    "format_explain",
    "render_terminal",
    "render_html",
]


# ---------------------------------------------------------------------------
# explain: replay one chunk's lifecycle


#: journal kind → the verb the explanation prints
_EXPLAIN_VERBS = {
    "path_spawn": "spawn",
    "path_killed": "kill",
    "converge": "converge",
    "switch": "switch",
    "misspeculation": "misspeculate",
    "reprocess": "reprocess",
    "retry": "retry",
    "timeout": "timeout",
    "invalid": "invalid",
    "fallback": "fallback",
}


@dataclass(slots=True)
class ChunkExplanation:
    """One chunk's journal, replayed into a tag-by-tag narrative."""

    chunk: int
    #: ``[offset, tag, event, detail, live]`` rows in journal order
    rows: list[list[object]] = field(default_factory=list)
    #: paths the chunk started with (the Table 5 quantity for the chunk)
    starting_paths: int = 0
    spawned: int = 0
    killed: int = 0
    converged: int = 0
    switches: int = 0
    misspeculated: bool = False
    #: offset of the first convergence down to a single live group
    converge_offset: int | None = None

    @property
    def headers(self) -> list[str]:
        return ["offset", "tag", "event", "detail", "live"]


def _event_detail(ev: Event) -> str:
    a = ev.args
    kind = ev.kind
    if kind == "path_spawn":
        states = a.get("states")
        suffix = f" states={list(states)}" if states is not None else ""
        return f"{a.get('reason', '?')}{suffix}"
    if kind == "path_killed":
        return f"{a.get('reason', '?')} killed={a.get('killed', '?')}"
    if kind == "converge":
        return f"merged={a.get('merged', '?')}"
    if kind == "switch":
        return f"to={a.get('to', '?')}"
    if kind == "misspeculation":
        return f"state={a.get('state', '?')} stack_depth={a.get('stack_depth', '?')}"
    if kind == "reprocess":
        return f"[{a.get('begin', '?')}, {a.get('end', '?')}) tokens={a.get('tokens', '?')}"
    if kind in ("retry", "timeout", "invalid"):
        return f"attempt={a.get('attempt', '?')}"
    if kind == "fallback":
        return f"attempts={a.get('attempts', '?')}"
    return ""


def explain_chunk(journal: Journal, chunk: int) -> ChunkExplanation:
    """Replay ``chunk``'s journal events into a :class:`ChunkExplanation`.

    Spawn reasons ``initial``/``scenario1``/``enumerate`` mark the
    chunk's *starting* paths (Table 5's per-chunk quantity); subsequent
    ``divergence``/``revival`` spawns are mid-chunk path growth.
    """
    exp = ChunkExplanation(chunk=chunk)
    for ev in journal.events_for_chunk(chunk):
        verb = _EXPLAIN_VERBS.get(ev.kind)
        if verb is None:
            continue
        live = ev.args.get("live")
        exp.rows.append([
            ev.offset if ev.offset >= 0 else None,
            ev.tag,
            verb,
            _event_detail(ev),
            live,
        ])
        if ev.kind == "path_spawn":
            n = ev.args.get("live", 0)
            exp.spawned += n
            if ev.args.get("reason") in ("initial", "scenario1", "enumerate"):
                exp.starting_paths = max(exp.starting_paths, n)
        elif ev.kind == "path_killed":
            exp.killed += ev.args.get("killed", 0)
        elif ev.kind == "converge":
            exp.converged += ev.args.get("merged", 0)
            if exp.converge_offset is None and ev.args.get("live") == 1:
                exp.converge_offset = ev.offset
        elif ev.kind == "switch":
            exp.switches += 1
        elif ev.kind == "misspeculation":
            exp.misspeculated = True
    return exp


def format_explain(exp: ChunkExplanation) -> str:
    """Render one chunk's explanation as aligned text."""
    from ..bench.reporting import format_table  # lazy: avoids an import cycle

    lines = [
        f"chunk {exp.chunk}: started {exp.starting_paths} path(s), "
        f"spawned {exp.spawned}, killed {exp.killed}, "
        f"converged {exp.converged}, {exp.switches} switch(es)"
    ]
    if exp.converge_offset is not None:
        lines.append(f"converged to a single path at offset {exp.converge_offset}")
    if exp.misspeculated:
        lines.append("misspeculated at join time (reprocessing engaged)")
    if exp.rows:
        lines.append(format_table(exp.headers, exp.rows))
    else:
        lines.append("(no journal events for this chunk — was the journal enabled?)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the run report


@dataclass(slots=True)
class RunReport:
    """Everything the terminal and HTML renderers consume.

    A plain data holder: both renderers are pure functions of this, so
    rendering the same report twice is byte-identical.
    """

    title: str
    #: ordered run facts shown in the header (file, engine, chunks, …)
    meta: dict[str, object] = field(default_factory=dict)
    #: per-chunk timeline bars: (label, start_ms, dur_ms, tokens, switches, paths)
    timeline: list[list[object]] = field(default_factory=list)
    #: per-chunk lifecycle: (chunk, start paths, spawned, killed,
    #: converged, switches, misspeculated)
    lifecycle: list[list[object]] = field(default_factory=list)
    #: Table 5/6 profile: (metric, value)
    profile: list[list[object]] = field(default_factory=list)
    #: journal event totals: (kind, count)
    event_counts: list[list[object]] = field(default_factory=list)
    #: per-query match counts: (query, matches)
    matches: list[list[object]] = field(default_factory=list)

    TIMELINE_HEADERS = ("chunk", "start ms", "dur ms", "tokens", "switches", "paths")
    LIFECYCLE_HEADERS = ("chunk", "start paths", "spawned", "killed",
                         "converged", "switches", "misspec")
    PROFILE_HEADERS = ("metric", "value")


def build_report(
    stats,
    journal: Journal,
    spans: Sequence = (),
    matches: dict[str, list[int]] | None = None,
    title: str = "repro run report",
    meta: dict[str, object] | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from one run's artefacts.

    ``stats`` is a :class:`~repro.core.stats.RunStats`; ``spans`` the
    tracer's span list (the ``chunk[i]`` spans become timeline bars);
    ``journal`` the run's flight recorder.
    """
    report = RunReport(title=title, meta=dict(meta or {}))

    chunk_spans = [s for s in spans if s.cat == "chunk" and s.name.startswith("chunk[")]
    if chunk_spans:
        base = min(s.t0 for s in chunk_spans)
        for s in sorted(chunk_spans, key=lambda s: s.name):
            report.timeline.append([
                s.name,
                (s.t0 - base) * 1e3,
                s.duration * 1e3,
                s.args.get("tokens"),
                s.args.get("switches"),
                s.args.get("starting_paths"),
            ])

    chunks = sorted({ev.chunk for ev in journal.events if ev.chunk >= 0})
    for ci in chunks:
        exp = explain_chunk(journal, ci)
        report.lifecycle.append([
            ci, exp.starting_paths, exp.spawned, exp.killed,
            exp.converged, exp.switches, "yes" if exp.misspeculated else "-",
        ])

    report.profile = [
        ["chunks", stats.n_chunks],
        ["avg starting paths (Table 5)", stats.avg_starting_paths],
        ["speculation accuracy (Table 6)", stats.speculation_accuracy],
        ["reprocessing cost (Table 6)", stats.reprocessing_cost],
        ["switches", stats.counters.switches],
        ["divergences", stats.counters.divergences],
        ["paths eliminated", stats.counters.paths_eliminated],
        ["paths converged", stats.counters.paths_converged],
        ["misspeculations", stats.counters.misspeculations],
        ["reprocessed tokens", stats.counters.reprocessed_tokens],
    ]
    report.event_counts = [[k, v] for k, v in sorted(journal.counts().items())]
    if journal.dropped:
        report.event_counts.append(["(dropped past limit)", journal.dropped])
    if matches is not None:
        report.matches = [[q, len(offs)] for q, offs in matches.items()]
    return report


def render_terminal(report: RunReport) -> str:
    """The aligned-text form of the report (what ``repro report`` prints)."""
    from ..bench.reporting import banner, format_table  # lazy: import cycle

    out = [banner(report.title)]
    for key, value in report.meta.items():
        out.append(f"{key}: {value}")
    if report.matches:
        out.append(format_table(["query", "matches"], report.matches,
                                title="matches"))
    if report.timeline:
        out.append(format_table(list(RunReport.TIMELINE_HEADERS), report.timeline,
                                title="chunk timeline"))
    if report.lifecycle:
        out.append(format_table(list(RunReport.LIFECYCLE_HEADERS), report.lifecycle,
                                title="path lifecycle (per chunk)"))
    out.append(format_table(list(RunReport.PROFILE_HEADERS), report.profile,
                            title="profile (Tables 5/6)"))
    if report.event_counts:
        out.append(format_table(["event", "count"], report.event_counts,
                                title="journal events"))
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# HTML rendering — deterministic, self-contained, no network assets

_CSS = """\
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 24px 0 8px; color: var(--text-primary); }
.viz-root .meta { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root table {
  border-collapse: collapse;
  font-size: 13px;
  font-variant-numeric: tabular-nums;
}
.viz-root th {
  text-align: left;
  color: var(--text-muted);
  font-weight: 500;
  border-bottom: 1px solid var(--baseline);
  padding: 4px 12px 4px 0;
}
.viz-root td {
  border-bottom: 1px solid var(--gridline);
  padding: 4px 12px 4px 0;
  color: var(--text-secondary);
}
.viz-root td:first-child { color: var(--text-primary); }
.viz-root .timeline { max-width: 720px; }
.viz-root .lane { display: flex; align-items: center; margin-bottom: 2px; }
.viz-root .lane-label {
  flex: 0 0 80px;
  font-size: 12px;
  color: var(--text-secondary);
  font-variant-numeric: tabular-nums;
}
.viz-root .lane-track {
  position: relative;
  flex: 1;
  height: 14px;
  background: transparent;
  border-left: 1px solid var(--baseline);
}
.viz-root .lane-bar {
  position: absolute;
  top: 0;
  height: 14px;
  border-radius: 0 4px 4px 0;
  background: var(--series-1);
  min-width: 2px;
}
.viz-root .lane-value {
  flex: 0 0 90px;
  font-size: 12px;
  color: var(--text-muted);
  text-align: right;
  font-variant-numeric: tabular-nums;
}
.viz-root .footer { color: var(--text-muted); font-size: 12px; margin-top: 24px; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _fmt_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.2f}"
    return str(value)


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt_cell(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _timeline_bars(timeline: Sequence[Sequence[object]]) -> str:
    """Horizontal bar lanes for the chunk timeline (single series)."""
    total = max((row[1] + row[2] for row in timeline), default=0.0) or 1.0
    lanes: list[str] = []
    for label, start_ms, dur_ms, *_rest in timeline:
        left = 100.0 * start_ms / total
        width = max(100.0 * dur_ms / total, 0.1)
        lanes.append(
            '<div class="lane">'
            f'<span class="lane-label">{_esc(label)}</span>'
            '<span class="lane-track">'
            f'<span class="lane-bar" style="left:{left:.2f}%;width:{width:.2f}%"></span>'
            "</span>"
            f'<span class="lane-value">{dur_ms:.2f} ms</span>'
            "</div>"
        )
    return '<div class="timeline">' + "".join(lanes) + "</div>"


def render_html(report: RunReport) -> str:
    """The report as one self-contained HTML document.

    Pure function of ``report``: no timestamps, no random ids, no
    scripts, no external assets — identical input renders
    byte-identical output.
    """
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(report.title)}</title>",
        f"<style>\n{_CSS}</style>",
        '</head><body class="viz-root">',
        f"<h1>{_esc(report.title)}</h1>",
    ]
    if report.meta:
        meta = " · ".join(f"{_esc(k)}: {_esc(v)}" for k, v in report.meta.items())
        parts.append(f'<p class="meta">{meta}</p>')
    if report.matches:
        parts.append("<h2>Matches</h2>")
        parts.append(_html_table(["query", "matches"], report.matches))
    if report.timeline:
        parts.append("<h2>Chunk timeline</h2>")
        parts.append(_timeline_bars(report.timeline))
        parts.append(_html_table(list(RunReport.TIMELINE_HEADERS), report.timeline))
    if report.lifecycle:
        parts.append("<h2>Path lifecycle (per chunk)</h2>")
        parts.append(_html_table(list(RunReport.LIFECYCLE_HEADERS), report.lifecycle))
    parts.append("<h2>Profile (Tables 5/6)</h2>")
    parts.append(_html_table(list(RunReport.PROFILE_HEADERS), report.profile))
    if report.event_counts:
        parts.append("<h2>Journal events</h2>")
        parts.append(_html_table(["event", "count"], report.event_counts))
    parts.append('<p class="footer">Generated by <code>repro report</code> — '
                 "self-contained, no external assets.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
