"""Run reports and chunk explanations over the flight-recorder stream.

Turns one run's observability artefacts — tracing spans
(:mod:`repro.obs.tracer`), the structured event journal
(:mod:`repro.obs.journal`) and the run statistics
(:mod:`repro.core.stats`) — into three human-facing products:

* :func:`build_report` + :func:`render_terminal` — the aligned-text run
  report behind ``repro report`` (chunk timeline, per-chunk path
  lifecycle, the Table 5/6 profile);
* :func:`render_html` — the same report as a **self-contained,
  deterministic** single HTML file: inline CSS only, no scripts, no
  network assets, and byte-identical output for identical input (the
  renderer is a pure function of the :class:`RunReport`);
* :func:`explain_chunk` + :func:`format_explain` — ``repro explain``:
  replay one chunk's journal tag-by-tag and show where paths were
  spawned, killed, converged and switched.

The HTML palette follows the repo's chart conventions: chart-chrome
inks for all text, one categorical series hue for the bars (a single
series needs no legend), light and dark values swapped by
``prefers-color-scheme`` with an explicit ``data-theme`` override.
"""

from __future__ import annotations

import html as _html
from collections.abc import Sequence
from dataclasses import dataclass, field

from .journal import Event, Journal

__all__ = [
    "ChunkExplanation",
    "RunReport",
    "build_report",
    "explain_chunk",
    "format_explain",
    "format_request",
    "render_terminal",
    "render_html",
    "render_statusz",
    "render_flame",
    "sparkline",
]


# ---------------------------------------------------------------------------
# explain: replay one chunk's lifecycle


#: journal kind → the verb the explanation prints
_EXPLAIN_VERBS = {
    "path_spawn": "spawn",
    "path_killed": "kill",
    "converge": "converge",
    "switch": "switch",
    "misspeculation": "misspeculate",
    "reprocess": "reprocess",
    "retry": "retry",
    "timeout": "timeout",
    "invalid": "invalid",
    "fallback": "fallback",
}


@dataclass(slots=True)
class ChunkExplanation:
    """One chunk's journal, replayed into a tag-by-tag narrative."""

    chunk: int
    #: ``[offset, tag, event, detail, live]`` rows in journal order
    rows: list[list[object]] = field(default_factory=list)
    #: paths the chunk started with (the Table 5 quantity for the chunk)
    starting_paths: int = 0
    spawned: int = 0
    killed: int = 0
    converged: int = 0
    switches: int = 0
    misspeculated: bool = False
    #: offset of the first convergence down to a single live group
    converge_offset: int | None = None

    @property
    def headers(self) -> list[str]:
        return ["offset", "tag", "event", "detail", "live"]


def _event_detail(ev: Event) -> str:
    a = ev.args
    kind = ev.kind
    if kind == "path_spawn":
        states = a.get("states")
        suffix = f" states={list(states)}" if states is not None else ""
        return f"{a.get('reason', '?')}{suffix}"
    if kind == "path_killed":
        return f"{a.get('reason', '?')} killed={a.get('killed', '?')}"
    if kind == "converge":
        return f"merged={a.get('merged', '?')}"
    if kind == "switch":
        return f"to={a.get('to', '?')}"
    if kind == "misspeculation":
        return f"state={a.get('state', '?')} stack_depth={a.get('stack_depth', '?')}"
    if kind == "reprocess":
        return f"[{a.get('begin', '?')}, {a.get('end', '?')}) tokens={a.get('tokens', '?')}"
    if kind in ("retry", "timeout", "invalid"):
        return f"attempt={a.get('attempt', '?')}"
    if kind == "fallback":
        return f"attempts={a.get('attempts', '?')}"
    return ""


def explain_chunk(journal: Journal, chunk: int) -> ChunkExplanation:
    """Replay ``chunk``'s journal events into a :class:`ChunkExplanation`.

    Spawn reasons ``initial``/``scenario1``/``enumerate`` mark the
    chunk's *starting* paths (Table 5's per-chunk quantity); subsequent
    ``divergence``/``revival`` spawns are mid-chunk path growth.
    """
    exp = ChunkExplanation(chunk=chunk)
    for ev in journal.events_for_chunk(chunk):
        verb = _EXPLAIN_VERBS.get(ev.kind)
        if verb is None:
            continue
        live = ev.args.get("live")
        exp.rows.append([
            ev.offset if ev.offset >= 0 else None,
            ev.tag,
            verb,
            _event_detail(ev),
            live,
        ])
        if ev.kind == "path_spawn":
            n = ev.args.get("live", 0)
            exp.spawned += n
            if ev.args.get("reason") in ("initial", "scenario1", "enumerate"):
                exp.starting_paths = max(exp.starting_paths, n)
        elif ev.kind == "path_killed":
            exp.killed += ev.args.get("killed", 0)
        elif ev.kind == "converge":
            exp.converged += ev.args.get("merged", 0)
            if exp.converge_offset is None and ev.args.get("live") == 1:
                exp.converge_offset = ev.offset
        elif ev.kind == "switch":
            exp.switches += 1
        elif ev.kind == "misspeculation":
            exp.misspeculated = True
    return exp


def format_explain(exp: ChunkExplanation) -> str:
    """Render one chunk's explanation as aligned text."""
    from ..bench.reporting import format_table  # lazy: avoids an import cycle

    lines = [
        f"chunk {exp.chunk}: started {exp.starting_paths} path(s), "
        f"spawned {exp.spawned}, killed {exp.killed}, "
        f"converged {exp.converged}, {exp.switches} switch(es)"
    ]
    if exp.converge_offset is not None:
        lines.append(f"converged to a single path at offset {exp.converge_offset}")
    if exp.misspeculated:
        lines.append("misspeculated at join time (reprocessing engaged)")
    if exp.rows:
        lines.append(format_table(exp.headers, exp.rows))
    else:
        lines.append("(no journal events for this chunk — was the journal enabled?)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the run report


@dataclass(slots=True)
class RunReport:
    """Everything the terminal and HTML renderers consume.

    A plain data holder: both renderers are pure functions of this, so
    rendering the same report twice is byte-identical.
    """

    title: str
    #: ordered run facts shown in the header (file, engine, chunks, …)
    meta: dict[str, object] = field(default_factory=dict)
    #: per-chunk timeline bars: (label, start_ms, dur_ms, tokens, switches, paths)
    timeline: list[list[object]] = field(default_factory=list)
    #: per-chunk lifecycle: (chunk, start paths, spawned, killed,
    #: converged, switches, misspeculated)
    lifecycle: list[list[object]] = field(default_factory=list)
    #: Table 5/6 profile: (metric, value)
    profile: list[list[object]] = field(default_factory=list)
    #: journal event totals: (kind, count)
    event_counts: list[list[object]] = field(default_factory=list)
    #: per-query match counts: (query, matches)
    matches: list[list[object]] = field(default_factory=list)

    TIMELINE_HEADERS = ("chunk", "start ms", "dur ms", "tokens", "switches", "paths")
    LIFECYCLE_HEADERS = ("chunk", "start paths", "spawned", "killed",
                         "converged", "switches", "misspec")
    PROFILE_HEADERS = ("metric", "value")


def build_report(
    stats,
    journal: Journal,
    spans: Sequence = (),
    matches: dict[str, list[int]] | None = None,
    title: str = "repro run report",
    meta: dict[str, object] | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from one run's artefacts.

    ``stats`` is a :class:`~repro.core.stats.RunStats`; ``spans`` the
    tracer's span list (the ``chunk[i]`` spans become timeline bars);
    ``journal`` the run's flight recorder.
    """
    report = RunReport(title=title, meta=dict(meta or {}))

    chunk_spans = [s for s in spans if s.cat == "chunk" and s.name.startswith("chunk[")]
    if chunk_spans:
        base = min(s.t0 for s in chunk_spans)
        for s in sorted(chunk_spans, key=lambda s: s.name):
            report.timeline.append([
                s.name,
                (s.t0 - base) * 1e3,
                s.duration * 1e3,
                s.args.get("tokens"),
                s.args.get("switches"),
                s.args.get("starting_paths"),
            ])

    chunks = sorted({ev.chunk for ev in journal.events if ev.chunk >= 0})
    for ci in chunks:
        exp = explain_chunk(journal, ci)
        report.lifecycle.append([
            ci, exp.starting_paths, exp.spawned, exp.killed,
            exp.converged, exp.switches, "yes" if exp.misspeculated else "-",
        ])

    report.profile = [
        ["chunks", stats.n_chunks],
        ["avg starting paths (Table 5)", stats.avg_starting_paths],
        ["speculation accuracy (Table 6)", stats.speculation_accuracy],
        ["reprocessing cost (Table 6)", stats.reprocessing_cost],
        ["switches", stats.counters.switches],
        ["divergences", stats.counters.divergences],
        ["paths eliminated", stats.counters.paths_eliminated],
        ["paths converged", stats.counters.paths_converged],
        ["misspeculations", stats.counters.misspeculations],
        ["reprocessed tokens", stats.counters.reprocessed_tokens],
    ]
    report.event_counts = [[k, v] for k, v in sorted(journal.counts().items())]
    if journal.dropped:
        report.event_counts.append(["(dropped past limit)", journal.dropped])
    if matches is not None:
        report.matches = [[q, len(offs)] for q, offs in matches.items()]
    return report


def render_terminal(report: RunReport) -> str:
    """The aligned-text form of the report (what ``repro report`` prints)."""
    from ..bench.reporting import banner, format_table  # lazy: import cycle

    out = [banner(report.title)]
    for key, value in report.meta.items():
        out.append(f"{key}: {value}")
    if report.matches:
        out.append(format_table(["query", "matches"], report.matches,
                                title="matches"))
    if report.timeline:
        out.append(format_table(list(RunReport.TIMELINE_HEADERS), report.timeline,
                                title="chunk timeline"))
    if report.lifecycle:
        out.append(format_table(list(RunReport.LIFECYCLE_HEADERS), report.lifecycle,
                                title="path lifecycle (per chunk)"))
    out.append(format_table(list(RunReport.PROFILE_HEADERS), report.profile,
                            title="profile (Tables 5/6)"))
    if report.event_counts:
        out.append(format_table(["event", "count"], report.event_counts,
                                title="journal events"))
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# HTML rendering — deterministic, self-contained, no network assets

_CSS = """\
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 24px 0 8px; color: var(--text-primary); }
.viz-root .meta { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root table {
  border-collapse: collapse;
  font-size: 13px;
  font-variant-numeric: tabular-nums;
}
.viz-root th {
  text-align: left;
  color: var(--text-muted);
  font-weight: 500;
  border-bottom: 1px solid var(--baseline);
  padding: 4px 12px 4px 0;
}
.viz-root td {
  border-bottom: 1px solid var(--gridline);
  padding: 4px 12px 4px 0;
  color: var(--text-secondary);
}
.viz-root td:first-child { color: var(--text-primary); }
.viz-root .timeline { max-width: 720px; }
.viz-root .lane { display: flex; align-items: center; margin-bottom: 2px; }
.viz-root .lane-label {
  flex: 0 0 80px;
  font-size: 12px;
  color: var(--text-secondary);
  font-variant-numeric: tabular-nums;
}
.viz-root .lane-track {
  position: relative;
  flex: 1;
  height: 14px;
  background: transparent;
  border-left: 1px solid var(--baseline);
}
.viz-root .lane-bar {
  position: absolute;
  top: 0;
  height: 14px;
  border-radius: 0 4px 4px 0;
  background: var(--series-1);
  min-width: 2px;
}
.viz-root .lane-value {
  flex: 0 0 90px;
  font-size: 12px;
  color: var(--text-muted);
  text-align: right;
  font-variant-numeric: tabular-nums;
}
.viz-root .footer { color: var(--text-muted); font-size: 12px; margin-top: 24px; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _fmt_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.2f}"
    return str(value)


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt_cell(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _timeline_bars(timeline: Sequence[Sequence[object]]) -> str:
    """Horizontal bar lanes for the chunk timeline (single series)."""
    total = max((row[1] + row[2] for row in timeline), default=0.0) or 1.0
    lanes: list[str] = []
    for label, start_ms, dur_ms, *_rest in timeline:
        left = 100.0 * start_ms / total
        width = max(100.0 * dur_ms / total, 0.1)
        lanes.append(
            '<div class="lane">'
            f'<span class="lane-label">{_esc(label)}</span>'
            '<span class="lane-track">'
            f'<span class="lane-bar" style="left:{left:.2f}%;width:{width:.2f}%"></span>'
            "</span>"
            f'<span class="lane-value">{dur_ms:.2f} ms</span>'
            "</div>"
        )
    return '<div class="timeline">' + "".join(lanes) + "</div>"


def render_html(report: RunReport) -> str:
    """The report as one self-contained HTML document.

    Pure function of ``report``: no timestamps, no random ids, no
    scripts, no external assets — identical input renders
    byte-identical output.
    """
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(report.title)}</title>",
        f"<style>\n{_CSS}</style>",
        '</head><body class="viz-root">',
        f"<h1>{_esc(report.title)}</h1>",
    ]
    if report.meta:
        meta = " · ".join(f"{_esc(k)}: {_esc(v)}" for k, v in report.meta.items())
        parts.append(f'<p class="meta">{meta}</p>')
    if report.matches:
        parts.append("<h2>Matches</h2>")
        parts.append(_html_table(["query", "matches"], report.matches))
    if report.timeline:
        parts.append("<h2>Chunk timeline</h2>")
        parts.append(_timeline_bars(report.timeline))
        parts.append(_html_table(list(RunReport.TIMELINE_HEADERS), report.timeline))
    if report.lifecycle:
        parts.append("<h2>Path lifecycle (per chunk)</h2>")
        parts.append(_html_table(list(RunReport.LIFECYCLE_HEADERS), report.lifecycle))
    parts.append("<h2>Profile (Tables 5/6)</h2>")
    parts.append(_html_table(list(RunReport.PROFILE_HEADERS), report.profile))
    if report.event_counts:
        parts.append("<h2>Journal events</h2>")
        parts.append(_html_table(["event", "count"], report.event_counts))
    parts.append('<p class="footer">Generated by <code>repro report</code> — '
                 "self-contained, no external assets.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# following one request through the service journal


def format_request(journal: Journal, request_id: int) -> str:
    """Replay one service request's journal events as aligned text.

    The service tags every lifecycle event (``admit`` / ``expire`` /
    ``respond`` / ``trace``) with ``request=<id>`` and every ``batch``
    event with the ids it served, so one request's whole journey —
    including the merged pass it shared and that pass's chunk spans —
    reconstructs from the journal alone (``repro report
    --from-journal … --request N``).
    """
    from ..bench.reporting import format_table  # lazy: avoids an import cycle

    mine = [ev for ev in journal.events if ev.args.get("request") == request_id]
    if not mine:
        return f"request {request_id}: no journal events (unknown id?)\n"
    batch_seqs = {
        ev.args["batch_seq"] for ev in mine if "batch_seq" in ev.args
    }
    batches = [
        ev for ev in journal.events
        if ev.kind == "batch" and ev.args.get("batch_seq") in batch_seqs
    ]
    lines = [f"request {request_id}"]
    rows = [
        [ev.kind, ev.args.get("doc", ""), _request_event_detail(ev)]
        for ev in sorted(mine + batches, key=lambda ev: ev.seq)
    ]
    lines.append(format_table(["event", "doc", "detail"], rows))
    trace = next((ev for ev in mine if ev.kind == "trace"), None)
    if trace is not None:
        stages = trace.args.get("stages_ms", {})
        if stages:
            lines.append(format_table(
                ["stage", "ms"], [[k, v] for k, v in stages.items()],
                title="stage breakdown",
            ))
        spans = trace.args.get("chunk_spans", [])
        if spans:
            lines.append(format_table(
                ["chunk", "start ms", "dur ms"], [list(row) for row in spans],
                title="chunk spans (owning batch)",
            ))
    return "\n".join(lines) + "\n"


def _request_event_detail(ev: Event) -> str:
    a = ev.args
    if ev.kind == "admit":
        return f"queries={a.get('queries', '?')}"
    if ev.kind == "batch":
        return (f"seq={a.get('batch_seq', '?')} size={a.get('size', '?')} "
                f"merged={a.get('merged_queries', '?')} "
                f"exec_s={a.get('exec_seconds', '?')}")
    if ev.kind == "respond":
        return f"batch_seq={a.get('batch_seq', '?')} matches={a.get('matches', '?')}"
    if ev.kind == "trace":
        return f"total_ms={a.get('total_ms', '?')} batch_seq={a.get('batch_seq', '?')}"
    if ev.kind == "expire":
        return "deadline passed before execution"
    return ""


# ---------------------------------------------------------------------------
# /statusz — the live operator dashboard (pure function of one varz dict)


def _ms(value: object) -> object:
    """Seconds → milliseconds for display; passes ``None`` through."""
    if isinstance(value, (int, float)):
        return value * 1e3
    return value


def _rate(hits: float, misses: float) -> object:
    total = hits + misses
    return hits / total if total else None


def render_statusz(varz: dict) -> str:
    """The ``/statusz`` dashboard as one self-contained HTML document.

    Same contract as :func:`render_html`: a pure function of its input
    (the service's :meth:`~repro.service.service.QueryService.varz`
    snapshot) — inline CSS only, no scripts, no network assets, and
    byte-identical output for identical input.  All freshness lives in
    the data, none in the renderer.
    """
    cfg = varz.get("config", {})
    latency = varz.get("latency", {})
    slow = varz.get("slow_log", {})
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro service status</title>",
        f"<style>\n{_CSS}</style>",
        '</head><body class="viz-root">',
        "<h1>repro service status</h1>",
    ]
    meta_bits = [
        f"uptime: {_fmt_cell(varz.get('uptime_seconds'))} s",
        f"backend: {_esc(cfg.get('backend', '?'))}",
        f"workers: {_esc(cfg.get('workers', '?'))}",
        f"tracing: {'on' if cfg.get('request_tracing') else 'off'}",
    ]
    parts.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')

    parts.append("<h2>Service</h2>")
    parts.append(_html_table(
        ["queue depth", "in flight", "documents", "warm engines",
         "batches", "journal events"],
        [[varz.get("queue_depth"), varz.get("in_flight"),
          varz.get("documents"), varz.get("engines"),
          varz.get("batches_total"),
          varz.get("journal", {}).get("events")]],
    ))

    requests = varz.get("requests", {})
    if requests:
        parts.append("<h2>Requests by status</h2>")
        parts.append(_html_table(
            ["status", "total"],
            [[status, requests[status]] for status in sorted(requests)],
        ))

    parts.append("<h2>Latency (ms)</h2>")
    lat_rows: list[list[object]] = []
    req_lat = latency.get("request_seconds", {})
    lat_rows.append(["request (end-to-end)", req_lat.get("count"),
                     _ms(req_lat.get("p50")), _ms(req_lat.get("p95")),
                     _ms(req_lat.get("p99"))])
    for stage, summary in latency.get("stages", {}).items():
        lat_rows.append([f"stage: {stage}", summary.get("count"),
                         _ms(summary.get("p50")), _ms(summary.get("p95")),
                         _ms(summary.get("p99"))])
    batch_lat = latency.get("batch_seconds", {})
    lat_rows.append(["merged pass", batch_lat.get("count"),
                     _ms(batch_lat.get("p50")), _ms(batch_lat.get("p95")),
                     _ms(batch_lat.get("p99"))])
    parts.append(_html_table(["interval", "count", "p50", "p95", "p99"], lat_rows))

    batch_size = varz.get("batch_size", {})
    parts.append("<h2>Batch occupancy</h2>")
    parts.append(_html_table(
        ["passes", "p50", "p95", "p99"],
        [[batch_size.get("count"), batch_size.get("p50"),
          batch_size.get("p95"), batch_size.get("p99")]],
    ))

    engine_cache = varz.get("engine_cache", {})
    compile_cache = varz.get("compile_cache", {})
    parts.append("<h2>Caches</h2>")
    parts.append(_html_table(
        ["cache", "hits", "misses", "hit rate"],
        [
            ["warm engines", engine_cache.get("hit", 0),
             engine_cache.get("miss", 0),
             _rate(engine_cache.get("hit", 0), engine_cache.get("miss", 0))],
            ["dense tables", compile_cache.get("hits", 0),
             compile_cache.get("misses", 0),
             _rate(compile_cache.get("hits", 0), compile_cache.get("misses", 0))],
        ],
    ))

    parts.append("<h2>Slow requests</h2>")
    parts.append(
        f'<p class="meta">threshold: '
        f"{_fmt_cell(_ms(slow.get('threshold_seconds')))} ms · "
        f"recorded: {_esc(slow.get('recorded', 0))} · "
        f"evicted: {_esc(slow.get('evicted', 0))}</p>"
    )
    entries = slow.get("entries", [])
    if entries:
        rows = []
        for e in entries:
            stages_ms = e.get("stages_ms", {})
            rows.append([
                e.get("seq"), e.get("request"), e.get("doc"),
                e.get("total_ms"),
                stages_ms.get("queue_wait"), stages_ms.get("batch_assembly"),
                stages_ms.get("execute"), stages_ms.get("respond"),
                e.get("batch_seq"), e.get("batch_size"),
                e.get("deadline_fraction"),
            ])
        parts.append(_html_table(
            ["seq", "request", "doc", "total ms", "queue ms", "assembly ms",
             "exec ms", "respond ms", "batch", "size", "deadline frac"],
            rows,
        ))
    else:
        parts.append('<p class="meta">none over threshold</p>')

    alerts = varz.get("alerts")
    if alerts:
        parts.append("<h2>Alerts</h2>")
        firing = alerts.get("firing", [])
        parts.append(
            f'<p class="meta">firing: {_esc(len(firing))}'
            + (f" ({_esc(', '.join(firing))})" if firing else "")
            + "</p>"
        )
        rule_rows = [
            [r.get("name"), r.get("state"), r.get("series"),
             f"{r.get('op', '')}{_fmt_cell(r.get('threshold'))}",
             r.get("value"), r.get("fired_count"), r.get("resolved_count")]
            for r in alerts.get("rules", [])
        ]
        if rule_rows:
            parts.append(_html_table(
                ["rule", "state", "series", "condition", "value",
                 "fired", "resolved"],
                rule_rows,
            ))

    telemetry = varz.get("telemetry")
    if telemetry and telemetry.get("series"):
        parts.append("<h2>Telemetry</h2>")
        parts.append(
            f'<p class="meta">collector ticks: '
            f"{_esc(telemetry.get('ticks', 0))} · counter resets: "
            f"{_esc(telemetry.get('resets', 0))}</p>"
        )
        series = telemetry["series"]
        tele_rows = []
        for name in sorted(series):
            entry = series[name]
            values = [p[1] for p in entry.get("points", [])]
            tele_rows.append([
                name, entry.get("kind"), len(values),
                values[-1] if values else None, sparkline(values),
            ])
        parts.append(_html_table(
            ["series", "kind", "points", "last", "history"], tele_rows))

    parts.append('<p class="footer">Served at <code>/statusz</code> — '
                 "self-contained, no external assets; data from "
                 "<code>/varz</code>.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# sparklines + the flame view (repro monitor / /profilez?format=flame)

#: eight block glyphs, lowest to highest
_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[object], width: int = 30) -> str:
    """A unicode sparkline of the last ``width`` numeric values.

    Min/max scaled per call; a flat series renders the lowest bar.
    Pure and deterministic — used by ``repro monitor`` panels and the
    ``/statusz`` telemetry table alike.
    """
    nums = [float(v) for v in values if isinstance(v, (int, float))]
    if not nums:
        return ""
    nums = nums[-max(1, width):]
    lo, hi = min(nums), max(nums)
    span = hi - lo
    if span <= 0:
        return _SPARK_BARS[0] * len(nums)
    top = len(_SPARK_BARS) - 1
    return "".join(
        _SPARK_BARS[min(top, int((v - lo) / span * len(_SPARK_BARS)))]
        for v in nums
    )


_FLAME_CSS = """\
.viz-root .flame { position: relative; font-size: 11px; }
.viz-root .flame-box {
  position: absolute;
  height: 16px;
  line-height: 16px;
  overflow: hidden;
  white-space: nowrap;
  box-sizing: border-box;
  border-right: 1px solid var(--surface-1);
  border-bottom: 1px solid var(--surface-1);
  padding: 0 3px;
  color: #0b0b0b;
  background: var(--gridline);
}
.viz-root .flame-lex { background: #7fb9e8; }
.viz-root .flame-kernel { background: #e8a87f; }
.viz-root .flame-transduce { background: #9fd49a; }
.viz-root .flame-compile { background: #d4c27a; }
.viz-root .flame-service { background: #c9a6dd; }
.viz-root .flame-store { background: #8fd0c9; }
.viz-root .flame-other { background: #cfcec6; }
"""


def _flame_tree(counts: dict[str, int]) -> dict:
    """Fold collapsed-stack counts into a root-down weighted tree."""
    root: dict = {"label": "all", "count": 0, "children": {}}
    for key in sorted(counts):
        n = counts[key]
        root["count"] += n
        node = root
        for label in key.split(";"):
            child = node["children"].get(label)
            if child is None:
                child = {"label": label, "count": 0, "children": {}}
                node["children"][label] = child
            child["count"] += n
            node = child
    return root


def _flame_boxes(node: dict, left: float, width: float, depth: int,
                 total: int, out: list[str], max_depth: list[int]) -> None:
    from .sampler import stage_of_label  # lazy: sampler imports nothing back

    max_depth[0] = max(max_depth[0], depth)
    stage = stage_of_label(node["label"]) if depth > 0 else None
    cls = f"flame-box flame-{stage}" if stage else "flame-box"
    share = 100.0 * node["count"] / total
    out.append(
        f'<div class="{cls}" '
        f'style="left:{left:.4f}%;top:{depth * 16}px;width:{width:.4f}%" '
        f'title="{_esc(node["label"])} — {node["count"]} samples '
        f'({share:.1f}%)">{_esc(node["label"])}</div>'
    )
    child_left = left
    for label in sorted(node["children"]):
        child = node["children"][label]
        child_width = width * child["count"] / node["count"]
        _flame_boxes(child, child_left, child_width, depth + 1, total,
                     out, max_depth)
        child_left += child_width


def render_flame(counts: dict[str, int], title: str = "repro flame view",
                 meta: dict[str, object] | None = None) -> str:
    """A collapsed-stack profile as one self-contained HTML flamegraph.

    Same contract as :func:`render_html`: pure function of its input
    (``"frame;frame" -> samples``, a
    :meth:`~repro.obs.sampler.SampleProfile.to_dict`), inline CSS only,
    no scripts, no external assets, byte-identical for identical input
    (children are laid out in sorted label order).  Boxes are colored
    by pipeline stage.
    """
    from .sampler import STAGES, SampleProfile

    profile = SampleProfile()
    if counts:
        profile.merge(counts)
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>\n{_CSS}{_FLAME_CSS}</style>",
        '</head><body class="viz-root">',
        f"<h1>{_esc(title)}</h1>",
    ]
    meta_bits = [f"samples: {profile.total}", f"stacks: {len(profile)}"]
    for key, value in (meta or {}).items():
        meta_bits.append(f"{_esc(key)}: {_esc(value)}")
    parts.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')
    if profile.total:
        stages = profile.stages()
        parts.append("<h2>By pipeline stage</h2>")
        parts.append(_html_table(
            ["stage", "samples", "share"],
            [[stage, stages[stage], stages[stage] / profile.total]
             for stage in STAGES if stages[stage]],
        ))
        parts.append("<h2>Hottest frames</h2>")
        parts.append(_html_table(
            ["frame", "samples"], [list(kv) for kv in profile.top(10)]))
        parts.append("<h2>Flame</h2>")
        boxes: list[str] = []
        max_depth = [0]
        _flame_boxes(_flame_tree(profile.to_dict()), 0.0, 100.0, 0,
                     profile.total, boxes, max_depth)
        height = (max_depth[0] + 1) * 16
        parts.append(f'<div class="flame" style="height:{height}px">'
                     + "".join(boxes) + "</div>")
    else:
        parts.append('<p class="meta">no samples captured</p>')
    parts.append('<p class="footer">Collapsed-stack sampling profile — '
                 "self-contained, no external assets.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
