"""Slow-request log — threshold-triggered, ring-buffered, queryable.

Percentiles (:meth:`~repro.obs.metrics.Histogram.quantile`) say *that*
the tail got slow; the slow log says *which requests* and *where the
time went*.  Whenever a request's end-to-end latency crosses the
configured threshold, its full span breakdown
(:class:`~repro.obs.reqtrace.RequestTrace`) is captured as a
:class:`SlowEntry` in a bounded ring buffer — old entries fall off the
back, so a sustained incident costs constant memory while the most
recent evidence is always on hand.

The log is queryable three ways:

* :meth:`SlowLog.snapshot` — the raw entries (newest last), with
  ``n``/``since`` limits (the ``/varz`` and ``/statusz`` surface);
* ``seq`` — every entry carries a monotonically increasing sequence
  number, so pollers can ask "anything new since seq S?" without
  re-downloading history;
* :attr:`SlowLog.recorded` / :attr:`SlowLog.evicted` — lifetime
  counters, so a scrape can tell "quiet service" from "ring wrapped".

All methods are thread-safe; ``consider`` on the fast path is one
comparison when the request is fast (the overwhelmingly common case).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SlowEntry", "SlowLog"]

#: default latency threshold (seconds) before a request is logged
DEFAULT_THRESHOLD = 0.5

#: default ring capacity
DEFAULT_CAPACITY = 128


@dataclass(slots=True)
class SlowEntry:
    """One over-threshold request, with its full span breakdown."""

    seq: int
    req_id: int
    doc_id: str
    queries: tuple[str, ...]
    total_ms: float
    stages_ms: dict[str, float] = field(default_factory=dict)
    #: fraction of the deadline budget consumed (None = no deadline)
    deadline_fraction: float | None = None
    batch_seq: int = -1
    batch_size: int = 0
    #: ``[name, start_ms, dur_ms]`` chunk spans of the owning batch
    chunk_spans: list = field(default_factory=list)
    #: wall-clock (``time.time``) at capture, for operator display
    wall_ts: float = 0.0

    def to_dict(self) -> dict:
        out: dict = {
            "seq": self.seq,
            "request": self.req_id,
            "doc": self.doc_id,
            "queries": list(self.queries),
            "total_ms": round(self.total_ms, 3),
            "stages_ms": {k: round(v, 3) for k, v in self.stages_ms.items()},
            "batch_seq": self.batch_seq,
            "batch_size": self.batch_size,
            "wall_ts": self.wall_ts,
        }
        if self.deadline_fraction is not None:
            out["deadline_fraction"] = round(self.deadline_fraction, 4)
        if self.chunk_spans:
            out["chunk_spans"] = [list(row) for row in self.chunk_spans]
        return out


class SlowLog:
    """Bounded ring of :class:`SlowEntry` records over a threshold."""

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold = threshold
        self.capacity = capacity
        self._ring: deque[SlowEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        #: lifetime totals (recorded includes entries since evicted)
        self.recorded = 0
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def consider(self, total_seconds: float, make_entry) -> SlowEntry | None:
        """Record the request iff it crossed the threshold.

        ``make_entry(seq, wall_ts)`` builds the :class:`SlowEntry`
        lazily — fast requests (the common case) pay one float compare
        and nothing else.
        """
        if total_seconds < self.threshold:
            return None
        import time

        with self._lock:
            entry = make_entry(self._seq, time.time())
            self._seq += 1
            if len(self._ring) == self.capacity:
                self.evicted += 1
            self._ring.append(entry)
            self.recorded += 1
        return entry

    def snapshot(self, n: int | None = None, since: int | None = None) -> list[SlowEntry]:
        """The buffered entries, oldest first.

        ``since`` keeps only entries with ``seq > since``; ``n`` keeps
        the newest ``n`` of what remains.
        """
        with self._lock:
            entries = list(self._ring)
        if since is not None:
            entries = [e for e in entries if e.seq > since]
        if n is not None and n >= 0:
            entries = entries[-n:] if n else []
        return entries

    def to_dicts(self, n: int | None = None, since: int | None = None) -> list[dict]:
        return [e.to_dict() for e in self.snapshot(n=n, since=since)]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
