"""Flight recorder — a bounded, structured event journal for one run.

Spans (:mod:`repro.obs.tracer`) answer *where the time went*; the
journal answers *what the grammar-aware machinery did*: which paths a
chunk started with, which feasible-table row killed which of them,
where the survivors converged, when the runner switched between tree
and stack execution, which chunks misspeculated and what got
reprocessed, plus the resilience ladder (retry/timeout/fallback) and
the compile cache (hit/miss).  Tables 5/6 of the paper are plain
aggregations over this event stream.

Event kinds and their arguments (see ``docs/OBSERVABILITY.md`` for the
full schema):

=================  ========================================================
``path_spawn``     paths entered execution (``reason``: ``initial`` /
                   ``scenario1`` / ``enumerate`` / ``divergence`` /
                   ``revival``; ``states``, ``live``)
``path_killed``    a feasibility check eliminated paths (``reason``:
                   ``infeasible`` for scenario 1/3 start-tag checks,
                   ``underflow`` for the scenario-2 check at a
                   divergence; ``killed``, ``live``)
``converge``       path groups merged at a pop (``merged``, ``live``)
``switch``         runtime data-structure switch (``to``: ``stack`` /
                   ``tree``)
``misspeculation`` a chunk's speculated mapping missed at join time
                   (``state``, ``stack_depth``)
``reprocess``      a byte range re-executed sequentially (``begin``,
                   ``end``, ``tokens``)
``retry``          a chunk attempt re-scheduled (``attempt``, ``cause``)
``timeout``        a chunk attempt exceeded its deadline (``attempt``)
``invalid``        a chunk returned a corrupt result (``attempt``,
                   ``cause``)
``fallback``       a chunk re-executed on the serial fallback
                   (``attempts``, ``cause``)
``cache_hit`` /    compile-cache lookup outcome (``size``)
``cache_miss``
``store_hit`` /    artifact-store read outcome (``artifact`` kind;
``store_miss``     hits also carry ``bytes``)
``store_write``    an artifact published to the store (``artifact``,
                   ``bytes``)
``store_invalid``  an artifact rejected as corrupt, truncated or stale
                   (``artifact``, ``reason``)
``alert``          an SLO alert rule transitioned (``rule``, ``state``:
                   ``firing`` / ``resolved``; ``series``, ``value``,
                   ``threshold``)
=================  ========================================================

Design contract (mirrors the tracer exactly):

* the default on every engine is the :data:`NULL_JOURNAL` singleton,
  whose ``record`` is a constant no-op — the hot token loops are never
  instrumented, so a disabled journal costs nothing and leaves results
  byte-identical;
* events are plain picklable dataclasses; per-worker events travel back
  inside :class:`~repro.transducer.mapping.ChunkResult.journal` and are
  adopted into the driver journal *in chunk order*, so the merged
  stream is deterministic across serial, thread and process backends
  (only the wall-clock ``ts`` field differs — compare with
  ``to_jsonl(timestamps=False)``);
* the journal is **bounded**: past ``limit`` events it counts drops
  instead of growing, so a pathological run cannot exhaust memory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from collections.abc import Iterable

__all__ = ["Event", "Journal", "NullJournal", "NULL_JOURNAL", "EVENT_KINDS"]

_clock = time.perf_counter

#: every kind the instrumentation emits (pinned by tests and docs)
EVENT_KINDS = (
    "path_spawn",
    "path_killed",
    "converge",
    "switch",
    "misspeculation",
    "reprocess",
    "retry",
    "timeout",
    "invalid",
    "fallback",
    "cache_hit",
    "cache_miss",
    "store_hit",
    "store_miss",
    "store_write",
    "store_invalid",
    "memo_hit",
    "memo_miss",
    "memo_reject",
    "alert",
)

#: default event-count bound per journal
DEFAULT_LIMIT = 65536


@dataclass(slots=True)
class Event:
    """One recorded occurrence; picklable, JSON-friendly.

    ``chunk`` is the chunk index (-1 for driver-side events with no
    chunk identity, e.g. compile-cache lookups), ``offset`` the byte
    offset in the document where known, ``tag`` the element tag where
    one is involved.  ``seq`` is the journal-assigned global sequence
    number (re-assigned on adoption so the merged stream numbers
    events in their deterministic merged order); ``ts`` is
    ``time.perf_counter()`` at record time and is the only
    non-deterministic field.
    """

    kind: str
    chunk: int = -1
    offset: int = -1
    tag: str | None = None
    seq: int = -1
    ts: float = 0.0
    args: dict = field(default_factory=dict)

    def to_dict(self, timestamps: bool = True) -> dict:
        """A JSON-ready dict; ``timestamps=False`` drops the ``ts`` field."""
        out: dict = {"seq": self.seq, "kind": self.kind, "chunk": self.chunk}
        if self.offset >= 0:
            out["offset"] = self.offset
        if self.tag is not None:
            out["tag"] = self.tag
        if timestamps:
            out["ts"] = self.ts
        if self.args:
            out["args"] = dict(sorted(self.args.items()))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            kind=data["kind"],
            chunk=data.get("chunk", -1),
            offset=data.get("offset", -1),
            tag=data.get("tag"),
            seq=data.get("seq", -1),
            ts=data.get("ts", 0.0),
            args=dict(data.get("args", {})),
        )


class Journal:
    """Collects events; share one per run (or one per worker, adopted)."""

    enabled = True

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit <= 0:
            raise ValueError(f"journal limit must be positive, got {limit}")
        self.limit = limit
        self.events: list[Event] = []
        #: events discarded after the bound was reached
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        kind: str,
        chunk: int = -1,
        offset: int = -1,
        tag: str | None = None,
        **args: object,
    ) -> None:
        """Append one event (or count a drop past the bound)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            Event(kind=kind, chunk=chunk, offset=offset, tag=tag,
                  seq=self._seq, ts=_clock(), args=dict(args) if args else {})
        )
        self._seq += 1

    def adopt(self, events: Iterable[Event]) -> None:
        """Merge events recorded elsewhere (e.g. by a worker process).

        Sequence numbers are re-assigned in adoption order, so a driver
        journal that adopts each chunk's events in chunk order carries
        one deterministic global ordering regardless of which backend
        (or how many OS threads/processes) produced them.
        """
        for ev in events:
            if len(self.events) >= self.limit:
                self.dropped += 1
                continue
            ev.seq = self._seq
            self._seq += 1
            self.events.append(ev)

    # -- queries over collected events ---------------------------------

    def counts(self) -> dict[str, int]:
        """Event totals by kind (insertion-ordered by first occurrence)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def by_kind(self, kind: str) -> list[Event]:
        return [ev for ev in self.events if ev.kind == kind]

    def events_for_chunk(self, chunk: int) -> list[Event]:
        return [ev for ev in self.events if ev.chunk == chunk]

    # -- serialisation -------------------------------------------------

    def to_jsonl(self, timestamps: bool = True) -> str:
        """One compact JSON object per line (trailing newline included).

        ``timestamps=False`` omits the ``ts`` field — the form two runs
        of the same work compare byte-identical in.
        """
        lines = [
            json.dumps(ev.to_dict(timestamps=timestamps),
                       separators=(",", ":"), sort_keys=True)
            for ev in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str, timestamps: bool = True) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl(timestamps=timestamps))

    @classmethod
    def from_jsonl(cls, text: str, limit: int = DEFAULT_LIMIT) -> "Journal":
        journal = cls(limit=limit)
        events = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
        journal.adopt(events)
        return journal

    @classmethod
    def read_jsonl(cls, path: str, limit: int = DEFAULT_LIMIT) -> "Journal":
        with open(path, encoding="utf-8") as fh:
            return cls.from_jsonl(fh.read(), limit=limit)


class NullJournal:
    """Journaling disabled: ``record`` is a constant no-op."""

    enabled = False
    events: tuple = ()
    dropped = 0
    limit = 0

    def __len__(self) -> int:
        return 0

    def record(self, kind: str, chunk: int = -1, offset: int = -1,
               tag: str | None = None, **args: object) -> None:
        return None

    def adopt(self, events: Iterable[Event]) -> None:
        return None

    def counts(self) -> dict[str, int]:
        return {}

    def by_kind(self, kind: str) -> list[Event]:
        return []

    def events_for_chunk(self, chunk: int) -> list[Event]:
        return []

    def to_jsonl(self, timestamps: bool = True) -> str:
        return ""


#: the process-wide disabled journal (engines default to this)
NULL_JOURNAL = NullJournal()
