"""Telemetry history — a bounded in-memory time-series store + collector.

The service's point-in-time surfaces (``/metrics``, ``/varz``) answer
*what is happening now*; this module adds the time dimension behind
``/varz``'s ``telemetry`` section, ``repro monitor`` and the alert
engine (:mod:`repro.obs.alerts`):

* :class:`TimeSeries` — one named series of ``(mono, wall, value)``
  points in a bounded deque (old points fall off the back);
* :class:`TimeSeriesStore` — the named-series registry with
  counter→rate derivation (**reset-aware**: a counter that went
  backwards, e.g. across a daemon restart replayed from persistence,
  contributes its post-reset value instead of a negative delta),
  windowed min/max/avg rollups, and optional **JSONL persistence with
  retention** so history survives restarts (one line per tick under
  the artifact-store root);
* :class:`Collector` — the background thread that snapshots a source
  callable every ``interval`` seconds and feeds the store, then runs
  its listeners (the alert engine hooks in here).

Design contract:

* samples are **monotonic-clocked** (`time.monotonic`) so window math
  never goes backwards under an NTP step; each point also carries a
  wall-clock timestamp for display and persistence re-basing;
* everything takes an injectable ``clock``/``wall`` pair and
  :meth:`Collector.tick` is callable directly, so the whole plane is
  testable with a fake clock — no sleeps, no flakes;
* persisted history is re-based on load: a stored point's age is
  ``now_wall - wall`` and its monotonic stamp becomes ``now_mono -
  age``, so windows keep working across process restarts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping

from .logsetup import get_logger

__all__ = ["TimeSeries", "TimeSeriesStore", "Collector"]

logger = get_logger("obs.timeseries")

#: the two series kinds: ``counter`` (monotonic, rate-derivable) and
#: ``gauge`` (instantaneous level, rollup-able)
SERIES_KINDS = ("counter", "gauge")

#: default points kept per series (10 minutes at the default 1 s tick)
DEFAULT_CAPACITY = 600

#: default persisted-tick retention (lines kept in the JSONL file)
DEFAULT_RETENTION = 5000


class TimeSeries:
    """One named series: a bounded deque of ``(mono, wall, value)``."""

    __slots__ = ("name", "kind", "points")

    def __init__(self, name: str, kind: str = "gauge",
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if kind not in SERIES_KINDS:
            raise ValueError(f"unknown series kind {kind!r} "
                             f"(choose from {SERIES_KINDS})")
        self.name = name
        self.kind = kind
        self.points: deque[tuple[float, float, float]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self.points)

    def append(self, mono: float, wall: float, value: float) -> None:
        self.points.append((mono, wall, float(value)))

    @property
    def latest(self) -> float | None:
        return self.points[-1][2] if self.points else None

    def window(self, seconds: float, now: float) -> list[tuple[float, float, float]]:
        """Points with ``mono >= now - seconds`` (all points if 0)."""
        if seconds <= 0:
            return list(self.points)
        cut = now - seconds
        return [p for p in self.points if p[0] >= cut]


class TimeSeriesStore:
    """Bounded named series + rates + rollups + optional persistence.

    Thread-safe: one lock guards the series map and the persistence
    file, so a collector tick and a ``/varz`` render never race.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        persist_path: str | None = None,
        retention: int = DEFAULT_RETENTION,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self.capacity = capacity
        self.retention = retention
        self.persist_path = persist_path
        self._clock = clock
        self._wall = wall
        self._lock = threading.Lock()
        self._series: dict[str, TimeSeries] = {}
        #: counter resets observed by :meth:`rate` bookkeeping
        self.resets = 0
        #: ticks recorded into this store (including loaded history)
        self.ticks = 0
        self._persisted_lines = 0
        if persist_path:
            self._load()

    # -- recording -----------------------------------------------------

    def record(
        self,
        values: Mapping[str, float],
        kinds: Mapping[str, str] | None = None,
        now: float | None = None,
        wall_ts: float | None = None,
        persist: bool = True,
    ) -> None:
        """Record one tick: a point per named value, one persisted line.

        ``kinds`` maps names to ``counter``/``gauge`` on first sight
        (unknown names default to ``gauge``).  ``now``/``wall_ts``
        override the clocks — the fake-clock hook the tests use.
        """
        mono = self._clock() if now is None else now
        wall_ts = self._wall() if wall_ts is None else wall_ts
        kinds = kinds or {}
        with self._lock:
            for name, value in values.items():
                series = self._series.get(name)
                if series is None:
                    series = TimeSeries(name, kinds.get(name, "gauge"),
                                        capacity=self.capacity)
                    self._series[name] = series
                series.append(mono, wall_ts, value)
            self.ticks += 1
            if persist and self.persist_path:
                self._persist_tick(wall_ts, values, kinds)

    # -- queries -------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> TimeSeries | None:
        with self._lock:
            return self._series.get(name)

    def latest(self, name: str) -> float | None:
        series = self.series(name)
        return series.latest if series is not None else None

    def rate(self, name: str, window: float = 60.0,
             now: float | None = None) -> float | None:
        """Per-second rate of a counter over ``window`` seconds.

        Sums the positive deltas between consecutive points; a
        **negative delta is a counter reset** (daemon restart between
        ticks) and contributes the post-reset value — the increments
        since the reset — instead of poisoning the rate with a negative
        number.  Returns ``None`` with fewer than two points in window.
        """
        now = self._clock() if now is None else now
        series = self.series(name)
        if series is None:
            return None
        pts = series.window(window, now)
        if len(pts) < 2:
            return None
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return None
        total = 0.0
        for (_, _, prev), (_, _, curr) in zip(pts, pts[1:]):
            delta = curr - prev
            if delta < 0:  # reset: count what accumulated since
                self.resets += 1
                delta = curr
            total += delta
        return total / span

    def rollup(self, name: str, window: float = 60.0,
               now: float | None = None) -> dict | None:
        """``{count, min, max, avg, last}`` over the window (None = empty)."""
        now = self._clock() if now is None else now
        series = self.series(name)
        if series is None:
            return None
        pts = series.window(window, now)
        if not pts:
            return None
        values = [v for _, _, v in pts]
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "avg": sum(values) / len(values),
            "last": values[-1],
        }

    def value_over(self, name: str, window: float,
                   now: float | None = None) -> float | None:
        """The quantity alert rules compare: rate for counters (over
        ``window``, default 60 s when 0), windowed average for gauges
        (latest value when ``window`` is 0)."""
        series = self.series(name)
        if series is None:
            return None
        if series.kind == "counter":
            return self.rate(name, window if window > 0 else 60.0, now=now)
        if window <= 0:
            return series.latest
        roll = self.rollup(name, window, now=now)
        return None if roll is None else roll["avg"]

    def to_dict(self, max_points: int = 60) -> dict:
        """The ``/varz`` telemetry section: bounded recent history.

        Per series: its kind and the newest ``max_points`` points as
        ``[wall_ts, value]`` pairs (wall clock for display; the
        in-process math uses the monotonic stamps).
        """
        with self._lock:
            out: dict = {"ticks": self.ticks, "resets": self.resets,
                         "series": {}}
            for name in sorted(self._series):
                series = self._series[name]
                pts = list(series.points)[-max_points:]
                out["series"][name] = {
                    "kind": series.kind,
                    "points": [[round(w, 3), v] for _, w, v in pts],
                }
            return out

    # -- persistence ---------------------------------------------------

    def _persist_tick(self, wall_ts: float, values: Mapping[str, float],
                      kinds: Mapping[str, str]) -> None:
        """Append one self-contained JSONL line (caller holds the lock)."""
        line = json.dumps(
            {"wall": round(wall_ts, 3), "v": dict(values),
             "k": {n: k for n, k in kinds.items() if k == "counter"}},
            separators=(",", ":"), sort_keys=True,
        )
        try:
            os.makedirs(os.path.dirname(self.persist_path) or ".", exist_ok=True)
            with open(self.persist_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
            self._persisted_lines += 1
            if self._persisted_lines > 2 * self.retention:
                self._prune()
        except OSError as exc:  # persistence is best-effort
            logger.warning("telemetry persistence failed: %s", exc)

    def _prune(self) -> None:
        """Rewrite the file keeping only the newest ``retention`` lines."""
        with open(self.persist_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        keep = lines[-self.retention:]
        tmp = self.persist_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.writelines(keep)
        os.replace(tmp, self.persist_path)
        self._persisted_lines = len(keep)

    def _load(self) -> None:
        """Replay persisted ticks, re-basing monotonic stamps from age."""
        try:
            with open(self.persist_path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return
        except OSError as exc:
            logger.warning("telemetry history unreadable: %s", exc)
            return
        self._persisted_lines = len(lines)
        now_mono, now_wall = self._clock(), self._wall()
        for raw in lines[-self.capacity:]:
            raw = raw.strip()
            if not raw:
                continue
            try:
                tick = json.loads(raw)
                wall_ts = float(tick["wall"])
                values = {str(k): float(v) for k, v in tick["v"].items()}
            except (ValueError, KeyError, TypeError):
                continue  # a torn tail line is not worth failing startup
            age = max(0.0, now_wall - wall_ts)
            kinds = {n: "counter" for n in tick.get("k", ())}
            self.record(values, kinds=kinds, now=now_mono - age,
                        wall_ts=wall_ts, persist=False)


class Collector:
    """Background sampler: snapshot a source into a store on an interval.

    ``source`` is a zero-argument callable returning ``(values,
    kinds)`` — the service wires its metrics/scheduler snapshot in
    here.  ``listeners`` run after each recorded tick with ``(store,
    now, wall_ts)`` — the alert engine's evaluation hook.  The thread
    is a daemon and :meth:`stop` is idempotent; :meth:`tick` is public
    so fake-clock tests can drive the plane without the thread.
    """

    def __init__(
        self,
        source: Callable[[], tuple[Mapping[str, float], Mapping[str, str]]],
        store: TimeSeriesStore,
        interval: float = 2.0,
        listeners: Iterable[Callable] = (),
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"collect interval must be positive, got {interval}")
        self.source = source
        self.store = store
        self.interval = interval
        self.listeners = list(listeners)
        self._clock = clock
        self._wall = wall
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        self.errors = 0

    def tick(self, now: float | None = None, wall_ts: float | None = None) -> None:
        """One collection cycle: snapshot, record, notify listeners."""
        now = self._clock() if now is None else now
        wall_ts = self._wall() if wall_ts is None else wall_ts
        try:
            values, kinds = self.source()
            self.store.record(values, kinds=kinds, now=now, wall_ts=wall_ts)
            for listener in self.listeners:
                listener(self.store, now, wall_ts)
        except Exception:  # the collector must never kill the service
            self.errors += 1
            logger.exception("telemetry collection tick failed")
        else:
            self.ticks += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def start(self) -> "Collector":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry-collector", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)
