"""Observability: tracing spans, metrics, exporters and logging.

The paper's whole argument is quantitative (Tables 5/6, Figures 8-10
are profiles of starting paths, switches and misspeculation cost), so
this package gives every run a measurable shape:

* :mod:`repro.obs.tracer` — context-manager **spans** with wall-clock
  durations and counter snapshots (``split``, ``lex``, ``chunk[i]``,
  ``join``, ``reprocess``, ``learn``, ``infer``), collected by a
  :class:`Tracer` and disabled at zero cost by the default
  :class:`NullTracer`;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram **registry**
  with Prometheus text exposition and JSON export;
* :mod:`repro.obs.export` — **Chrome-tracing JSON** (loadable in
  ``chrome://tracing`` / Perfetto) and the per-chunk timeline table
  behind ``repro profile``;
* :mod:`repro.obs.logsetup` — stdlib :mod:`logging` wiring for the
  ``repro`` logger hierarchy (package ``NullHandler`` by default,
  ``configure_logging`` for CLI ``--log-level``).

Quick start::

    from repro import GapEngine, Tracer

    tracer = Tracer()
    engine = GapEngine(["//item/name"], grammar=dtd, tracer=tracer)
    result = engine.run(xml_text, n_chunks=8)
    for span in tracer.spans:
        print(span.name, f"{span.duration * 1e3:.2f} ms", span.args)
"""

from .logsetup import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
    table_registry,
)
from .export import (
    chrome_trace,
    chunk_timeline,
    format_timeline,
    write_chrome_trace,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "chunk_timeline",
    "collect_run_metrics",
    "configure_logging",
    "format_timeline",
    "get_logger",
    "table_registry",
    "write_chrome_trace",
]
