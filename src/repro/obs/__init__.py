"""Observability: tracing spans, metrics, exporters and logging.

The paper's whole argument is quantitative (Tables 5/6, Figures 8-10
are profiles of starting paths, switches and misspeculation cost), so
this package gives every run a measurable shape:

* :mod:`repro.obs.tracer` — context-manager **spans** with wall-clock
  durations and counter snapshots (``split``, ``lex``, ``chunk[i]``,
  ``join``, ``reprocess``, ``learn``, ``infer``), collected by a
  :class:`Tracer` and disabled at zero cost by the default
  :class:`NullTracer`;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram **registry**
  with Prometheus text exposition and JSON export;
* :mod:`repro.obs.export` — **Chrome-tracing JSON** (loadable in
  ``chrome://tracing`` / Perfetto) and the per-chunk timeline table
  behind ``repro profile``;
* :mod:`repro.obs.journal` — the **flight recorder**: a bounded,
  structured event journal of the path lifecycle (spawn / kill /
  converge / switch), speculation and resilience events, off by
  default via the zero-cost :data:`NULL_JOURNAL`;
* :mod:`repro.obs.report` — ``repro report`` / ``repro explain``:
  terminal and self-contained HTML run reports built from spans +
  journal + stats, plus the ``/statusz`` operator dashboard renderer;
* :mod:`repro.obs.reqtrace` — **per-request stage traces** for the
  query service (queue wait / batch assembly / execute / respond),
  disabled at zero cost by :data:`NULL_REQUEST_TRACE`;
* :mod:`repro.obs.slowlog` — the threshold-triggered, ring-buffered
  **slow-request log** behind ``/varz`` and ``/statusz``;
* :mod:`repro.obs.logsetup` — stdlib :mod:`logging` wiring for the
  ``repro`` logger hierarchy (package ``NullHandler`` by default,
  ``configure_logging`` for CLI ``--log-level``);
* :mod:`repro.obs.timeseries` — the bounded **telemetry history**: a
  collector thread snapshots metrics + scheduler on an interval into
  monotonic-clocked series with counter→rate derivation, windowed
  rollups and optional JSONL persistence;
* :mod:`repro.obs.alerts` — declarative **SLO/alert rules** (threshold
  and two-window burn-rate) with firing/resolved state machines behind
  ``/alertz`` and the ``alert`` journal kind;
* :mod:`repro.obs.sampler` — the continuous **stack-sampling
  profiler** (``sys._current_frames()`` at ~50 Hz) aggregating into
  deterministic collapsed-stack profiles and the ``/profilez`` flame
  view.

Quick start::

    from repro import GapEngine, Tracer

    tracer = Tracer()
    engine = GapEngine(["//item/name"], grammar=dtd, tracer=tracer)
    result = engine.run(xml_text, n_chunks=8)
    for span in tracer.spans:
        print(span.name, f"{span.duration * 1e3:.2f} ms", span.args)
"""

from .alerts import (
    DEFAULT_RULES,
    AlertManager,
    AlertRule,
    AlertState,
    parse_alert_rule,
    parse_alert_rules,
)
from .journal import NULL_JOURNAL, Event, Journal, NullJournal
from .logsetup import configure_logging, get_logger
from .sampler import SampleProfile, StackSampler
from .timeseries import Collector, TimeSeries, TimeSeriesStore
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
    table_registry,
)
from .export import (
    chrome_trace,
    chunk_timeline,
    format_timeline,
    write_chrome_trace,
)
from .report import (
    RunReport,
    build_report,
    explain_chunk,
    format_explain,
    format_request,
    render_flame,
    render_html,
    render_statusz,
    render_terminal,
    sparkline,
)
from .reqtrace import (
    NULL_REQUEST_TRACE,
    STAGES,
    NullRequestTrace,
    RequestTrace,
)
from .slowlog import SlowEntry, SlowLog
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "AlertManager",
    "AlertRule",
    "AlertState",
    "Collector",
    "Counter",
    "DEFAULT_RULES",
    "Event",
    "Gauge",
    "Histogram",
    "Journal",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_REQUEST_TRACE",
    "NULL_TRACER",
    "NullJournal",
    "NullRequestTrace",
    "NullTracer",
    "RequestTrace",
    "RunReport",
    "STAGES",
    "SampleProfile",
    "SlowEntry",
    "SlowLog",
    "Span",
    "StackSampler",
    "TimeSeries",
    "TimeSeriesStore",
    "Tracer",
    "build_report",
    "chrome_trace",
    "chunk_timeline",
    "collect_run_metrics",
    "configure_logging",
    "explain_chunk",
    "format_explain",
    "format_request",
    "format_timeline",
    "get_logger",
    "parse_alert_rule",
    "parse_alert_rules",
    "render_flame",
    "render_html",
    "render_statusz",
    "render_terminal",
    "sparkline",
    "table_registry",
    "write_chrome_trace",
]
