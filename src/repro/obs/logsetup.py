"""Logging wiring for the ``repro`` logger hierarchy.

The package follows the stdlib library convention: everything logs to
children of the ``repro`` logger, which carries a ``NullHandler`` so an
un-configured application sees no spurious output and no "no handler"
warnings.  Applications opt in with their own ``logging`` config, or
via :func:`configure_logging` (what the CLI's ``--log-level`` flag
does).

Noteworthy events and their levels:

* ``DEBUG`` on ``repro.transducer.runner`` — per-check path-elimination
  and divergence events (guarded so the hot loop pays one
  ``isEnabledFor`` per chunk when disabled);
* ``DEBUG`` on ``repro.transducer.join`` — join-time misspeculations
  and the ranges they force into sequential reprocessing;
* ``DEBUG`` on ``repro.core.speculative`` — grammar-learning progress.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["PACKAGE_LOGGER", "get_logger", "configure_logging"]

PACKAGE_LOGGER = "repro"

# library convention: silent until the application configures logging
logging.getLogger(PACKAGE_LOGGER).addHandler(logging.NullHandler())


def get_logger(suffix: str | None = None) -> logging.Logger:
    """The package logger, or a named child (``get_logger("join")``)."""
    if suffix:
        return logging.getLogger(f"{PACKAGE_LOGGER}.{suffix}")
    return logging.getLogger(PACKAGE_LOGGER)


def configure_logging(level: int | str = "INFO", stream=None) -> logging.Handler:
    """Attach a stream handler to the package logger at ``level``.

    Returns the handler so callers (and tests) can detach it again
    with ``logging.getLogger("repro").removeHandler(handler)``.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-5s %(name)s: %(message)s")
    )
    logger = logging.getLogger(PACKAGE_LOGGER)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
