"""Declarative SLO/alert rules over the telemetry time-series store.

A rule is a compact colon-separated spec string (same shape as the
fault-injection specs in :mod:`repro.parallel.faults`), evaluated
against the :class:`~repro.obs.timeseries.TimeSeriesStore` on every
collector tick:

**Threshold rules** — ``SERIES OP VALUE[:opt=...]``::

    queue_fraction>0.8:for=10:resolve=30
    request_p99_ms>250:for=5:window=60
    requests_error>0.1:window=120          # counter → rate/s over 120 s

**Burn-rate rules** — ``burn:SERIES OP VALUE:short=S:long=S`` fire only
when the rate exceeds the threshold over *both* windows (the classic
two-window burn alert: the short window makes it fast, the long window
makes it ignore blips)::

    burn:requests_expired>0.05:short=60:long=600

Options (all seconds): ``for`` — condition must hold this long before
firing (0 = immediately); ``resolve`` — condition must be clear this
long before a firing alert resolves (hysteresis, default 60);
``window`` — evaluation window (counters derive a rate/s over it,
default 60; gauges average over it, 0 = latest point); ``name`` — a
display name (defaults to the spec).

The comparison quantity follows the series kind (see
:meth:`~repro.obs.timeseries.TimeSeriesStore.value_over`): counters are
compared as **rates per second**, gauges as windowed averages.

Each rule runs a firing/resolved state machine (``ok`` → ``pending`` →
``firing`` → ``ok``); transitions are what the service journals as
``alert`` events and counts in the ``repro_alerts_firing`` gauge.  The
whole module is clock-injectable — the state machines take explicit
``now`` values, so hysteresis is testable with a fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeseries import TimeSeriesStore

__all__ = [
    "AlertRule",
    "AlertState",
    "AlertManager",
    "parse_alert_rule",
    "parse_alert_rules",
    "DEFAULT_RULES",
]

#: alert states (the state machine's vocabulary)
STATES = ("ok", "pending", "firing")

#: comparison operators a rule condition may use
_OPS = (">", "<")

#: the built-in SLO pack ``repro serve --alert-rule default`` expands to
DEFAULT_RULES = (
    "queue_fraction>0.9:for=5:resolve=30:name=queue-saturation",
    "request_p99_ms>1000:for=10:resolve=60:name=latency-slo",
    "requests_error>0.5:window=60:for=5:resolve=60:name=error-rate",
    "burn:requests_expired>0.1:short=60:long=600:name=expiry-burn",
    "stream_lag_bytes>8388608:for=10:resolve=30:name=stream-lag",
)


@dataclass(frozen=True, slots=True)
class AlertRule:
    """One parsed rule: the condition plus its timing envelope."""

    series: str
    op: str                      # ">" or "<"
    threshold: float
    kind: str = "threshold"      # "threshold" | "burn"
    for_seconds: float = 0.0
    resolve_seconds: float = 60.0
    window: float = 60.0         # threshold rules
    short: float = 60.0          # burn rules
    long: float = 600.0          # burn rules
    name: str = ""
    spec: str = ""

    def breached(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" else value < self.threshold

    def evaluate(self, store: TimeSeriesStore, now: float) -> tuple[bool, float | None]:
        """``(condition_true, observed_value)`` against the store."""
        if self.kind == "burn":
            short = store.rate(self.series, self.short, now=now)
            long = store.rate(self.series, self.long, now=now)
            if short is None or long is None:
                return False, short
            return self.breached(short) and self.breached(long), short
        value = store.value_over(self.series, self.window, now=now)
        if value is None:
            return False, None
        return self.breached(value), value

    def describe(self) -> dict:
        out = {
            "name": self.name,
            "spec": self.spec,
            "series": self.series,
            "op": self.op,
            "threshold": self.threshold,
            "kind": self.kind,
            "for_seconds": self.for_seconds,
            "resolve_seconds": self.resolve_seconds,
        }
        if self.kind == "burn":
            out["short"] = self.short
            out["long"] = self.long
        else:
            out["window"] = self.window
        return out


def _parse_condition(text: str) -> tuple[str, str, float]:
    for op in _OPS:
        if op in text:
            series, _, raw = text.partition(op)
            series = series.strip()
            if not series:
                raise ValueError(f"alert rule {text!r}: missing series name")
            try:
                return series, op, float(raw)
            except ValueError:
                raise ValueError(
                    f"alert rule {text!r}: threshold {raw!r} is not a number"
                ) from None
    raise ValueError(
        f"alert rule {text!r}: expected 'series>value' or 'series<value'"
    )


def parse_alert_rule(spec: str) -> AlertRule:
    """Parse one spec string into an :class:`AlertRule` (raises ValueError)."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty alert rule")
    parts = spec.split(":")
    kind = "threshold"
    if parts[0] == "burn":
        kind = "burn"
        parts = parts[1:]
        if not parts:
            raise ValueError(f"alert rule {spec!r}: burn rule needs a condition")
    series, op, threshold = _parse_condition(parts[0])
    opts: dict[str, float] = {}
    name = ""
    for part in parts[1:]:
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"alert rule {spec!r}: bad option {part!r} "
                             f"(expected key=value)")
        if key == "name":
            name = raw.strip()
            continue
        if key not in ("for", "resolve", "window", "short", "long"):
            raise ValueError(f"alert rule {spec!r}: unknown option {key!r}")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"alert rule {spec!r}: option {key}={raw!r} is not a number"
            ) from None
        if value < 0:
            raise ValueError(f"alert rule {spec!r}: option {key} must be >= 0")
        opts[key] = value
    if kind == "burn" and "window" in opts:
        raise ValueError(f"alert rule {spec!r}: burn rules take short=/long=, "
                         f"not window=")
    if kind == "threshold" and ("short" in opts or "long" in opts):
        raise ValueError(f"alert rule {spec!r}: short=/long= are burn-rule "
                         f"options (prefix with 'burn:')")
    short = opts.get("short", 60.0)
    long = opts.get("long", 600.0)
    if kind == "burn" and short >= long:
        raise ValueError(f"alert rule {spec!r}: short window ({short}) must "
                         f"be smaller than long ({long})")
    return AlertRule(
        series=series, op=op, threshold=threshold, kind=kind,
        for_seconds=opts.get("for", 0.0),
        resolve_seconds=opts.get("resolve", 60.0),
        window=opts.get("window", 60.0),
        short=short, long=long,
        name=name or spec, spec=spec,
    )


def parse_alert_rules(specs) -> list[AlertRule]:
    """Parse a spec sequence, expanding the literal ``default`` pack."""
    rules: list[AlertRule] = []
    for spec in specs:
        if spec.strip() == "default":
            rules.extend(parse_alert_rule(s) for s in DEFAULT_RULES)
        else:
            rules.append(parse_alert_rule(spec))
    return rules


@dataclass(slots=True)
class AlertState:
    """One rule's live state machine."""

    rule: AlertRule
    state: str = "ok"
    #: when the current state was entered (monotonic)
    since: float = 0.0
    #: when the condition was last observed true / false (monotonic)
    last_true: float | None = None
    last_false: float | None = None
    value: float | None = None
    fired_count: int = 0
    resolved_count: int = 0

    def step(self, condition: bool, value: float | None,
             now: float) -> str | None:
        """Advance one tick; returns ``"firing"``/``"resolved"`` on a
        transition, ``None`` otherwise."""
        self.value = value
        if condition:
            self.last_true = now
        else:
            self.last_false = now
        if self.state == "ok":
            if condition:
                self.state, self.since = "pending", now
                if self.rule.for_seconds <= 0:
                    self.state = "firing"
                    self.fired_count += 1
                    return "firing"
            return None
        if self.state == "pending":
            if not condition:
                self.state, self.since = "ok", now
                return None
            if now - self.since >= self.rule.for_seconds:
                self.state, self.since = "firing", now
                self.fired_count += 1
                return "firing"
            return None
        # firing: resolve only after the condition has been continuously
        # clear for resolve_seconds (hysteresis against flapping)
        if condition:
            return None
        clear_since = self.last_true
        if clear_since is None or (self.last_false is not None
                                   and now - clear_since >= self.rule.resolve_seconds):
            self.state, self.since = "ok", now
            self.resolved_count += 1
            return "resolved"
        return None

    def to_dict(self) -> dict:
        out = self.rule.describe()
        out.update(
            state=self.state,
            since=round(self.since, 3),
            value=self.value,
            fired_count=self.fired_count,
            resolved_count=self.resolved_count,
        )
        return out


class AlertManager:
    """Evaluates a rule set each tick and tracks firing state.

    Stateless about time: every entry point takes an explicit ``now``
    so the whole engine runs under a fake clock in tests.  Not
    internally locked — the service serialises calls through its
    collector tick (one evaluation at a time) and snapshots under its
    observability lock.
    """

    #: transition-history ring bound (newest kept)
    HISTORY = 64

    def __init__(self, rules) -> None:
        self.states = [AlertState(rule=r) for r in rules]
        #: newest transitions, each ``{rule, state, value, threshold, ts}``
        self.transitions: list[dict] = []

    def __len__(self) -> int:
        return len(self.states)

    def evaluate(self, store: TimeSeriesStore, now: float,
                 wall_ts: float | None = None) -> list[dict]:
        """One evaluation pass; returns this tick's transitions."""
        out: list[dict] = []
        for st in self.states:
            condition, value = st.rule.evaluate(store, now)
            transition = st.step(condition, value, now)
            if transition is not None:
                record = {
                    "rule": st.rule.name,
                    "series": st.rule.series,
                    "state": transition,
                    "value": value,
                    "threshold": st.rule.threshold,
                    "wall_ts": wall_ts,
                }
                out.append(record)
                self.transitions.append(record)
        if len(self.transitions) > self.HISTORY:
            del self.transitions[: len(self.transitions) - self.HISTORY]
        return out

    def firing(self) -> list[str]:
        return [st.rule.name for st in self.states if st.state == "firing"]

    def to_dict(self) -> dict:
        """The ``/alertz`` payload (also embedded in ``/varz``)."""
        return {
            "rules": [st.to_dict() for st in self.states],
            "firing": self.firing(),
            "transitions": list(self.transitions),
        }
