"""Static syntax tree — Algorithm 1 of the paper.

A *static syntax tree* (SST) concisely captures every legal nesting
relation a grammar permits: each node is an element in a distinct
*context* (chain of ancestors), each child element appears exactly once
under its parent node, and recursion is represented by a ``cycle``
back-pointer to the ancestor node it recurses to, instead of unfolding
(Figure 6 of the paper).  Its size depends only on the grammar, never on
the input data.

Construction follows Algorithm 1: starting from the root element,
children are expanded breadth-first; a child whose name equals an
ancestor on the current path becomes a cycle pointer rather than a new
node.  A child whose name matches a *non-ancestor* existing element
still gets its own node — the SST distinguishes the same element in
different contexts (e.g. ``id`` under ``feed`` vs ``id`` under
``entry`` in Figure 1), which is exactly what makes the feasible-path
table context-sensitive.

The same structure is reused for *partial* trees built from data
(Algorithm 3, :mod:`repro.grammar.extraction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import Grammar, GrammarError

__all__ = ["SyntaxNode", "StaticSyntaxTree", "build_syntax_tree"]


@dataclass(eq=False, slots=True)
class SyntaxNode:
    """One element-in-context node of a static syntax tree.

    ``cycle`` is the Algorithm-1 back-pointer: when the grammar lets
    this node contain an element that is one of its ancestors (or
    itself), ``cycle`` points at that ancestor node.  A node may close
    several distinct cycles (mutual recursion through different
    ancestors), hence a list.
    """

    tag: str
    parent: "SyntaxNode | None" = None
    children: list["SyntaxNode"] = field(default_factory=list)
    cycle: list["SyntaxNode"] = field(default_factory=list)
    pcdata: bool = False

    @property
    def is_leaf(self) -> bool:
        """A node with no child nodes and no cycles (e.g. #PCDATA-only)."""
        return not self.children and not self.cycle

    def depth(self) -> int:
        """Root has depth 1 (matching the paper's d_max convention)."""
        d, node = 0, self
        while node is not None:
            d += 1
            node = node.parent
        return d

    def ancestors(self) -> list["SyntaxNode"]:
        """This node's proper ancestors, nearest first."""
        out: list[SyntaxNode] = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def path(self) -> str:
        """Slash-separated tag path from the root (for diagnostics)."""
        parts = [a.tag for a in reversed(self.ancestors())] + [self.tag]
        return "/" + "/".join(parts)

    def find_child(self, tag: str) -> "SyntaxNode | None":
        for c in self.children:
            if c.tag == tag:
                return c
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cyc = f" cycle->{[c.tag for c in self.cycle]}" if self.cycle else ""
        return f"SyntaxNode({self.path()}{cyc})"


@dataclass(slots=True)
class StaticSyntaxTree:
    """A rooted static syntax tree plus convenience traversals."""

    root: SyntaxNode

    def nodes(self) -> list[SyntaxNode]:
        """All nodes in depth-first pre-order."""
        out: list[SyntaxNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def nodes_by_tag(self) -> dict[str, list[SyntaxNode]]:
        """Group nodes by element name (one tag may occur in many contexts)."""
        out: dict[str, list[SyntaxNode]] = {}
        for node in self.nodes():
            out.setdefault(node.tag, []).append(node)
        return out

    def tags(self) -> frozenset[str]:
        return frozenset(n.tag for n in self.nodes())

    def n_cycles(self) -> int:
        """Number of cycle back-edges (the ``g`` of the paper's complexity)."""
        return sum(len(n.cycle) for n in self.nodes())

    def max_depth(self) -> int:
        return max(n.depth() for n in self.nodes())

    def __len__(self) -> int:
        return len(self.nodes())


def build_syntax_tree(grammar: Grammar) -> StaticSyntaxTree:
    """Algorithm 1 — construct the static syntax tree of ``grammar``.

    Works for partial grammars too: an element that is referenced but
    not declared becomes a leaf node (its children are unknown), which
    is what makes speculative-mode inference under-approximate.
    """
    if not grammar.elements:
        raise GrammarError("cannot build a syntax tree from an empty grammar")
    root = SyntaxNode(grammar.root, pcdata=grammar.allows_pcdata(grammar.root))
    # Breadth-first expansion; each node is expanded exactly once, and a
    # child equal to an ancestor becomes a cycle pointer.
    queue: list[SyntaxNode] = [root]
    while queue:
        node = queue.pop(0)
        ancestor_by_tag = {a.tag: a for a in [node, *node.ancestors()]}
        for child_tag in sorted(grammar.children_of(node.tag)):
            back = ancestor_by_tag.get(child_tag)
            if back is not None:
                node.cycle.append(back)
            else:
                child = SyntaxNode(
                    child_tag,
                    parent=node,
                    pcdata=grammar.allows_pcdata(child_tag),
                )
                node.children.append(child)
                queue.append(child)
    return StaticSyntaxTree(root)
