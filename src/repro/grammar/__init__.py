"""Grammar substrate: DTD object model, parser, static syntax trees.

* :mod:`~repro.grammar.model` — content-model AST and :class:`Grammar`;
* :mod:`~repro.grammar.dtd_parser` — DTD / DOCTYPE parsing;
* :mod:`~repro.grammar.syntax_tree` — static syntax tree (paper Alg. 1);
* :mod:`~repro.grammar.extraction` — partial-grammar extraction from
  data (paper Alg. 3, speculative mode);
* :mod:`~repro.grammar.sampling` — GAP-Spec(X%) partial grammars.
"""

from .dtd_parser import DTDParseError, parse_doctype, parse_dtd
from .extraction import ExtractionError, extract_grammar, extract_syntax_tree, grammar_from_tree
from .model import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    Empty,
    Grammar,
    GrammarError,
    Name,
    PCData,
    Repeat,
    Seq,
    UNBOUNDED,
)
from .sampling import sample_partial_grammar
from .syntax_tree import StaticSyntaxTree, SyntaxNode, build_syntax_tree
from .xsd_parser import XSDParseError, is_xsd, parse_xsd

__all__ = [
    "AnyContent",
    "Choice",
    "ContentModel",
    "DTDParseError",
    "ElementDecl",
    "Empty",
    "ExtractionError",
    "Grammar",
    "GrammarError",
    "Name",
    "PCData",
    "Repeat",
    "Seq",
    "StaticSyntaxTree",
    "SyntaxNode",
    "UNBOUNDED",
    "XSDParseError",
    "build_syntax_tree",
    "extract_grammar",
    "extract_syntax_tree",
    "grammar_from_tree",
    "parse_doctype",
    "parse_dtd",
    "is_xsd",
    "parse_xsd",
    "sample_partial_grammar",
]
