"""Partial-grammar extraction from input data — Algorithm 3 of the paper.

In speculative mode no pre-defined grammar exists; GAP instead *learns*
a partial static syntax tree from prior inputs of the same corpus (runs
over data from the same "hidden" grammar).  Algorithm 3 streams the
tokens once, maintaining a stack of syntax-tree nodes: a start tag
either descends into an existing child node or creates one, and an end
tag pops.

The extracted tree is *partial* in two ways:

* elements (or element-contexts) that never occurred in the observed
  data are absent, and
* unlike Algorithm 1's output it has no ``cycle`` back-pointers —
  recursion observed in data appears as explicitly unfolded nodes up to
  the deepest observed nesting.

Both limitations are exactly what forces the speculative transducer's
validation/reprocessing machinery.

The module also converts an extracted tree back into a
:class:`~repro.grammar.model.Grammar` (child sets become ``ANY``-free
star-of-choice models) so that the rest of the pipeline — which is
grammar-driven — is agnostic to where the grammar came from.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..xmlstream.tokens import Token
from .model import Choice, ContentModel, ElementDecl, Grammar, Name, PCData, Repeat, UNBOUNDED
from .syntax_tree import StaticSyntaxTree, SyntaxNode

__all__ = ["ExtractionError", "extract_syntax_tree", "extract_grammar", "grammar_from_tree"]


class ExtractionError(ValueError):
    """Raised when the observed token stream is not well-formed."""


def extract_syntax_tree(tokens: Iterable[Token], prior: StaticSyntaxTree | None = None) -> StaticSyntaxTree:
    """Algorithm 3 — extract a (partial) static syntax tree from data.

    ``prior`` allows incremental learning across runs: pass the tree
    extracted from earlier inputs and it is extended in place with
    structures seen in the new stream (the paper's "collects some
    partial grammar from prior runs").
    """
    root: SyntaxNode | None = prior.root if prior is not None else None
    stack: list[SyntaxNode] = []
    for tok in tokens:
        if tok.is_start:
            if root is None:
                root = SyntaxNode(tok.name)
                stack.append(root)
            elif not stack:
                if tok.name != root.tag:
                    raise ExtractionError(
                        f"document element {tok.name!r} does not match prior root {root.tag!r}"
                    )
                stack.append(root)
            else:
                parent = stack[-1]
                child = parent.find_child(tok.name)
                if child is None:
                    child = SyntaxNode(tok.name, parent=parent)
                    parent.children.append(child)
                stack.append(child)
        elif tok.is_end:
            if not stack or stack[-1].tag != tok.name:
                raise ExtractionError(f"mismatched end tag </{tok.name}> at offset {tok.offset}")
            stack.pop()
        else:  # text
            if not stack:
                raise ExtractionError(f"character data outside the document element at offset {tok.offset}")
            stack[-1].pcdata = True
    if root is None:
        raise ExtractionError("empty token stream")
    if stack:
        raise ExtractionError(f"unclosed element <{stack[-1].tag}> at end of stream")
    return StaticSyntaxTree(root)


def extract_grammar(tokens: Iterable[Token]) -> Grammar:
    """Extract a partial :class:`Grammar` directly from a token stream."""
    return grammar_from_tree(extract_syntax_tree(tokens))


def grammar_from_tree(tree: StaticSyntaxTree) -> Grammar:
    """Convert a syntax tree into an equivalent (loose) grammar.

    The child *sets* of every context of an element are unioned and
    rendered as ``(c1 | c2 | ... | #PCDATA)*`` — the loosest content
    model with those children.  This loses ordering/cardinality, which
    is fine: the feasible-path inference only consumes nesting
    relations, and the paper's static syntax tree makes the same
    approximation.
    """
    children: dict[str, set[str]] = {}
    pcdata: dict[str, bool] = {}
    order: list[str] = []
    for node in tree.nodes():
        if node.tag not in children:
            children[node.tag] = set()
            pcdata[node.tag] = False
            order.append(node.tag)
        children[node.tag].update(c.tag for c in node.children)
        children[node.tag].update(c.tag for c in node.cycle)
        pcdata[node.tag] = pcdata[node.tag] or node.pcdata

    decls: dict[str, ElementDecl] = {}
    for tag in order:
        parts: list[ContentModel] = [Name(c) for c in sorted(children[tag])]
        if pcdata[tag] or not parts:
            parts.append(PCData())
        inner: ContentModel = parts[0] if len(parts) == 1 else Choice(tuple(parts))
        if isinstance(inner, PCData):
            model: ContentModel = inner
        else:
            model = Repeat(inner, 0, UNBOUNDED)
        decls[tag] = ElementDecl(tag, model)
    return Grammar(root=tree.root.tag, elements=decls)
