"""Partial-grammar sampling for the GAP-Spec(X%) configurations.

The paper evaluates speculative GAP with 20%/40%/80% of the complete
grammar and describes the sampling procedure in footnote 3:

    "To ensure the partial grammar is meaningful, we randomly and
    recursively remove leaf elements from the original grammar."

We reproduce that exactly: repeatedly pick a random *leaf* declaration
(an element whose declared children are all undeclared or absent — i.e.
removing it never orphans the root path) and drop its declaration,
until only ``fraction`` of the declarations remain.  Removing a leaf
makes it an *undeclared* element: it still appears in its parent's
content model, so the syntax tree keeps a node for it, but its own
children become unknown — precisely the "incomplete grammar" a
speculative transducer must cope with.

The root declaration is never removed (a grammar without a root is not
a grammar).
"""

from __future__ import annotations

import random

from .model import Grammar

__all__ = ["sample_partial_grammar"]


def sample_partial_grammar(grammar: Grammar, fraction: float, seed: int = 0) -> Grammar:
    """Return a copy of ``grammar`` keeping ~``fraction`` of declarations.

    Parameters
    ----------
    grammar:
        The complete grammar.
    fraction:
        Target fraction of element declarations to keep, in ``(0, 1]``.
        ``1.0`` returns an identical copy.
    seed:
        RNG seed — benchmarks use fixed seeds for reproducibility.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep = max(1, round(len(grammar.elements) * fraction))
    rng = random.Random(seed)
    remaining = dict(grammar.elements)

    while len(remaining) > keep:
        leaves = [name for name in remaining if name != grammar.root and _is_leaf(remaining, name)]
        if not leaves:
            # No removable leaf (pathological, e.g. a fully recursive
            # grammar): fall back to removing any non-root element.
            leaves = [name for name in remaining if name != grammar.root]
            if not leaves:
                break
        victim = rng.choice(leaves)
        del remaining[victim]

    return Grammar(root=grammar.root, elements=remaining)


def _is_leaf(elements: dict, name: str) -> bool:
    """A declaration is a leaf when none of its declared children remain.

    Children that were already removed (now undeclared) do not count —
    this is the "recursive" part of the paper's procedure: removing a
    node can turn its parent into a leaf.
    """
    decl = elements[name]
    return not any(child in elements for child in decl.model.child_names() if child != name)
