"""Grammar object model — DTD content models and element declarations.

A DTD defines, per element, a *content model*: a regular expression over
child element names (plus ``#PCDATA``).  GAP only needs the *nesting
relation* the grammar induces — which elements may appear as children
of which — but we model the full content-model structure so that

* the DTD parser is faithful (round-trips real DTDs),
* the dataset generators (:mod:`repro.datasets.generators`) can produce
  documents that actually conform to the declared models (sequencing
  and cardinality included), and
* the validator (:mod:`repro.xmlstream.validate`) can check conformance,
  which the property-based tests use to guarantee that generated
  corpora are legal inputs for the non-speculative soundness claims.

The classes form a small immutable AST::

    ContentModel := Name(name)            -- a child element
                  | PCData()              -- #PCDATA
                  | Empty()               -- EMPTY
                  | AnyContent()          -- ANY
                  | Seq(parts...)         -- (a, b, c)
                  | Choice(parts...)      -- (a | b | c)
                  | Repeat(part, lo, hi)  -- x?, x*, x+
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ContentModel",
    "Name",
    "PCData",
    "Empty",
    "AnyContent",
    "Seq",
    "Choice",
    "Repeat",
    "ElementDecl",
    "Grammar",
    "GrammarError",
]


class GrammarError(ValueError):
    """Raised for malformed or inconsistent grammars."""


@dataclass(frozen=True, slots=True)
class ContentModel:
    """Base class for content-model nodes."""

    def child_names(self) -> frozenset[str]:
        """The set of element names that may appear as direct children."""
        raise NotImplementedError

    def allows_pcdata(self) -> bool:
        """Whether character data may appear directly inside the element."""
        return False

    def to_dtd(self) -> str:
        """Render back to DTD content-model syntax."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Name(ContentModel):
    """A reference to a child element by name."""

    name: str

    def child_names(self) -> frozenset[str]:
        return frozenset((self.name,))

    def to_dtd(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class PCData(ContentModel):
    """``#PCDATA`` — character data."""

    def child_names(self) -> frozenset[str]:
        return frozenset()

    def allows_pcdata(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True, slots=True)
class Empty(ContentModel):
    """``EMPTY`` — the element has no content."""

    def child_names(self) -> frozenset[str]:
        return frozenset()

    def to_dtd(self) -> str:
        return "EMPTY"


@dataclass(frozen=True, slots=True)
class AnyContent(ContentModel):
    """``ANY`` — any declared element or character data may appear.

    ``child_names`` cannot be resolved locally; :class:`Grammar` expands
    it to the full element vocabulary.
    """

    def child_names(self) -> frozenset[str]:
        return frozenset()

    def allows_pcdata(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return "ANY"


@dataclass(frozen=True, slots=True)
class Seq(ContentModel):
    """A sequence ``(a, b, ...)`` — parts in order."""

    parts: tuple[ContentModel, ...]

    def child_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.child_names()
        return out

    def allows_pcdata(self) -> bool:
        return any(p.allows_pcdata() for p in self.parts)

    def to_dtd(self) -> str:
        return "(" + ", ".join(p.to_dtd() for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Choice(ContentModel):
    """A choice ``(a | b | ...)`` — exactly one part."""

    parts: tuple[ContentModel, ...]

    def child_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.child_names()
        return out

    def allows_pcdata(self) -> bool:
        return any(p.allows_pcdata() for p in self.parts)

    def to_dtd(self) -> str:
        return "(" + " | ".join(p.to_dtd() for p in self.parts) + ")"


#: sentinel for an unbounded upper repetition bound
UNBOUNDED = -1


@dataclass(frozen=True, slots=True)
class Repeat(ContentModel):
    """Cardinality wrapper: ``x?`` (0..1), ``x*`` (0..inf), ``x+`` (1..inf)."""

    part: ContentModel
    lo: int
    hi: int  # UNBOUNDED for no upper bound

    def child_names(self) -> frozenset[str]:
        return self.part.child_names()

    def allows_pcdata(self) -> bool:
        return self.part.allows_pcdata()

    def to_dtd(self) -> str:
        inner = self.part.to_dtd()
        if (self.lo, self.hi) == (0, 1):
            suffix = "?"
        elif (self.lo, self.hi) == (0, UNBOUNDED):
            suffix = "*"
        elif (self.lo, self.hi) == (1, UNBOUNDED):
            suffix = "+"
        else:  # pragma: no cover - not constructible from DTD syntax
            raise GrammarError(f"non-DTD cardinality ({self.lo},{self.hi})")
        if inner.startswith("#"):
            # '#PCDATA?' is not DTD syntax; parenthesise defensively
            inner = f"({inner})"
        return inner + suffix


def optional(part: ContentModel) -> Repeat:
    """``part?``"""
    return Repeat(part, 0, 1)


def star(part: ContentModel) -> Repeat:
    """``part*``"""
    return Repeat(part, 0, UNBOUNDED)


def plus(part: ContentModel) -> Repeat:
    """``part+``"""
    return Repeat(part, 1, UNBOUNDED)


@dataclass(frozen=True, slots=True)
class ElementDecl:
    """One ``<!ELEMENT name model>`` declaration."""

    name: str
    model: ContentModel

    def to_dtd(self) -> str:
        body = self.model.to_dtd()
        if isinstance(self.model, (Empty, AnyContent)):
            return f"<!ELEMENT {self.name} {body}>"
        if not body.startswith("("):
            body = f"({body})"
        return f"<!ELEMENT {self.name} {body}>"


@dataclass(slots=True)
class Grammar:
    """A complete (or partial) DTD grammar.

    Attributes
    ----------
    root:
        Name of the document element (from ``<!DOCTYPE root [...]>``,
        or the first declared element).
    elements:
        Mapping element name → :class:`ElementDecl`, in declaration
        order (Python dicts preserve insertion order, which Algorithm 1
        relies on when it assumes "the first element is the root").
    """

    root: str
    elements: dict[str, ElementDecl] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root and self.elements and self.root not in self.elements:
            raise GrammarError(f"root element {self.root!r} is not declared")

    # -- queries -----------------------------------------------------

    def element_names(self) -> list[str]:
        """All declared element names, in declaration order."""
        return list(self.elements)

    def children_of(self, name: str) -> frozenset[str]:
        """Direct-child element names allowed under ``name``.

        ``ANY`` content expands to every declared element.  Undeclared
        elements (possible in *partial* grammars) have no known
        children.
        """
        decl = self.elements.get(name)
        if decl is None:
            return frozenset()
        if isinstance(decl.model, AnyContent):
            return frozenset(self.elements)
        return decl.model.child_names()

    def allows_pcdata(self, name: str) -> bool:
        """Whether character data may appear directly under ``name``."""
        decl = self.elements.get(name)
        return decl is not None and decl.model.allows_pcdata()

    def is_declared(self, name: str) -> bool:
        return name in self.elements

    def undeclared_children(self) -> frozenset[str]:
        """Names referenced by some content model but never declared.

        A complete grammar has none; partial grammars (sampled or
        extracted) commonly do.
        """
        referenced: set[str] = set()
        for decl in self.elements.values():
            referenced |= self.children_of(decl.name)
        return frozenset(referenced - set(self.elements))

    def is_complete(self) -> bool:
        """True when every referenced element is declared."""
        return not self.undeclared_children()

    # -- rendering ---------------------------------------------------

    def to_dtd(self) -> str:
        """Render as the internal subset of a DOCTYPE declaration."""
        decls = "\n  ".join(d.to_dtd() for d in self.elements.values())
        return f"<!DOCTYPE {self.root} [\n  {decls}\n]>"

    def __contains__(self, name: str) -> bool:
        return name in self.elements

    def __len__(self) -> int:
        return len(self.elements)
