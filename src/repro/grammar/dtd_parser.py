"""DTD parser — turns DTD text into a :class:`~repro.grammar.model.Grammar`.

Accepts either

* a full document prolog — ``<?xml ...?> <!DOCTYPE root [ ... ]> ...`` —
  in which case the internal subset is parsed and the DOCTYPE name
  becomes the grammar root (this lets callers feed a whole XML document
  and extract its inline grammar, like Figure 1 of the paper), or
* bare declaration text — a sequence of ``<!ELEMENT ...>`` /
  ``<!ATTLIST ...>`` / ``<!ENTITY ...>`` declarations — in which case
  the first declared element is taken as the root (Algorithm 1's
  convention).

Content-model syntax supported (the full DTD element grammar except
mixed-content name lists, which are normalised to a choice)::

    model   := 'EMPTY' | 'ANY' | particle
    particle:= '(' inner ')' card?
    inner   := seq | choice | single
    seq     := item (',' item)+
    choice  := item ('|' item)+
    item    := NAME card? | '#PCDATA' | particle
    card    := '?' | '*' | '+'

``<!ATTLIST ...>`` and ``<!ENTITY ...>`` declarations are recognised and
skipped (attributes play no role in the supported XPath fragment).
Parameter entities are not supported and raise a clear error.
"""

from __future__ import annotations

from .model import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    Empty,
    Grammar,
    GrammarError,
    Name,
    PCData,
    Repeat,
    Seq,
    UNBOUNDED,
)

__all__ = ["parse_dtd", "parse_doctype", "DTDParseError"]

_WS = " \t\r\n"


class DTDParseError(GrammarError):
    """Raised on malformed DTD text, with position information."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at position {pos})")
        self.pos = pos


def parse_dtd(text: str) -> Grammar:
    """Parse DTD text (bare declarations or a full DOCTYPE/document)."""
    stripped = text.lstrip()
    if stripped.startswith("<?xml") or "<!DOCTYPE" in text:
        return parse_doctype(text)
    return _parse_declarations(text, root=None)


def parse_doctype(text: str) -> Grammar:
    """Parse the ``<!DOCTYPE name [ internal subset ]>`` in ``text``."""
    start = text.find("<!DOCTYPE")
    if start == -1:
        raise DTDParseError("no <!DOCTYPE ...> declaration found", 0)
    i = start + len("<!DOCTYPE")
    i = _skip_ws(text, i)
    j = i
    while j < len(text) and text[j] not in _WS + "[>":
        j += 1
    root = text[i:j]
    if not root:
        raise DTDParseError("missing DOCTYPE name", i)
    open_bracket = text.find("[", j)
    if open_bracket == -1:
        raise DTDParseError("DOCTYPE has no internal subset [...]", j)
    close_bracket = text.find("]", open_bracket)
    if close_bracket == -1:
        raise DTDParseError("unterminated internal subset", open_bracket)
    subset = text[open_bracket + 1 : close_bracket]
    return _parse_declarations(subset, root=root)


def _parse_declarations(text: str, root: str | None) -> Grammar:
    decls: dict[str, ElementDecl] = {}
    i = 0
    n = len(text)
    while i < n:
        i = _skip_ws(text, i)
        if i >= n:
            break
        if text.startswith("<!--", i):
            close = text.find("-->", i)
            if close == -1:
                raise DTDParseError("unterminated comment", i)
            i = close + 3
            continue
        if text.startswith("<!ELEMENT", i):
            decl, i = _parse_element_decl(text, i)
            if decl.name in decls:
                raise DTDParseError(f"duplicate declaration of {decl.name!r}", i)
            decls[decl.name] = decl
            continue
        if text.startswith("<!ATTLIST", i) or text.startswith("<!ENTITY", i) or text.startswith("<!NOTATION", i):
            close = text.find(">", i)
            if close == -1:
                raise DTDParseError("unterminated declaration", i)
            if text.startswith("<!ENTITY", i) and text[i + len("<!ENTITY") :].lstrip().startswith("%"):
                raise DTDParseError("parameter entities are not supported", i)
            i = close + 1
            continue
        if text[i] == "%":
            raise DTDParseError("parameter-entity references are not supported", i)
        raise DTDParseError(f"unexpected content {text[i:i+20]!r}", i)

    if not decls:
        raise DTDParseError("no <!ELEMENT> declarations found", 0)
    if root is None:
        root = next(iter(decls))
    return Grammar(root=root, elements=decls)


def _parse_element_decl(text: str, i: int) -> tuple[ElementDecl, int]:
    i += len("<!ELEMENT")
    i = _skip_ws(text, i)
    j = i
    while j < len(text) and text[j] not in _WS + "(>":
        j += 1
    name = text[i:j]
    if not name:
        raise DTDParseError("missing element name", i)
    i = _skip_ws(text, j)
    model, i = _parse_content_model(text, i)
    i = _skip_ws(text, i)
    if i >= len(text) or text[i] != ">":
        raise DTDParseError(f"expected '>' to close <!ELEMENT {name}", i)
    return ElementDecl(name, model), i + 1


def _parse_content_model(text: str, i: int) -> tuple[ContentModel, int]:
    if text.startswith("EMPTY", i):
        return Empty(), i + 5
    if text.startswith("ANY", i):
        return AnyContent(), i + 3
    if i < len(text) and text[i] == "(":
        return _parse_particle(text, i)
    raise DTDParseError("expected EMPTY, ANY or '(' in content model", i)


def _parse_particle(text: str, i: int) -> tuple[ContentModel, int]:
    """Parse ``( ... )card?`` starting at the opening parenthesis."""
    assert text[i] == "("
    i = _skip_ws(text, i + 1)
    items: list[ContentModel] = []
    separator: str | None = None
    while True:
        item, i = _parse_item(text, i)
        items.append(item)
        i = _skip_ws(text, i)
        if i >= len(text):
            raise DTDParseError("unterminated content particle", i)
        ch = text[i]
        if ch == ")":
            i += 1
            break
        if ch not in ",|":
            raise DTDParseError(f"expected ',', '|' or ')', got {ch!r}", i)
        if separator is None:
            separator = ch
        elif separator != ch:
            raise DTDParseError("mixed ',' and '|' at the same nesting level", i)
        i = _skip_ws(text, i + 1)

    if len(items) == 1:
        inner: ContentModel = items[0]
    elif separator == ",":
        inner = Seq(tuple(items))
    else:
        inner = Choice(tuple(items))
    return _parse_cardinality(text, i, inner)


def _parse_item(text: str, i: int) -> tuple[ContentModel, int]:
    if i < len(text) and text[i] == "(":
        return _parse_particle(text, i)
    if text.startswith("#PCDATA", i):
        return PCData(), i + len("#PCDATA")
    j = i
    while j < len(text) and text[j] not in _WS + ",|)?*+>":
        j += 1
    name = text[i:j]
    if not name:
        raise DTDParseError("expected a name, '(' or #PCDATA", i)
    return _parse_cardinality(text, j, Name(name))


def _parse_cardinality(text: str, i: int, inner: ContentModel) -> tuple[ContentModel, int]:
    if i < len(text):
        ch = text[i]
        if ch == "?":
            return Repeat(inner, 0, 1), i + 1
        if ch == "*":
            return Repeat(inner, 0, UNBOUNDED), i + 1
        if ch == "+":
            return Repeat(inner, 1, UNBOUNDED), i + 1
    return inner, i


def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i] in _WS:
        i += 1
    return i
