"""XML Schema (XSD) reader — the paper's second grammar format.

The paper's static syntax tree generator "takes a DTD/XSD grammar as
input" (Section 6, Implementation).  This module reads the subset of
W3C XML Schema that describes *element structure* — the only
information GAP consumes — and lowers it onto the same
:class:`~repro.grammar.model.Grammar` the DTD parser produces, so the
whole pipeline (Algorithm 1, inference, engines) is format-agnostic.

Supported constructs::

    xs:schema           — root; element form/namespace machinery ignored
    xs:element          — global or local; @name/@type/@ref,
                          @minOccurs/@maxOccurs, inline complexType
    xs:complexType      — named (top-level) or anonymous (inline);
                          @mixed
    xs:sequence         — → Seq        (with occurs wrapping)
    xs:choice           — → Choice     (with occurs wrapping)
    xs:all              — → over-approximated as (a | b | ...)*;
                          element-set precision is what GAP needs, and
                          xs:all's each-at-most-once constraint only
                          tightens validation, never feasibility
    xs:any              — → AnyContent
    xs:simpleType /     — → #PCDATA
    simpleContent
    xs:attribute        — ignored (no attribute axes in the fragment)

Unsupported schema features that would change *element structure* —
``xs:group`` refs, ``substitutionGroup``, ``xs:extension`` with added
particles, ``xs:import``/``include`` — raise :class:`XSDParseError`
rather than silently producing a wrong grammar (a wrong grammar breaks
non-speculative soundness).

Element declarations are keyed by element *name*, like DTDs: XSD allows
two same-named local elements with different types, which this lowering
merges by choice — a sound over-approximation for feasibility.
"""

from __future__ import annotations

from ..xmlstream.tree import TreeNode, parse_tree
from .model import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    Empty,
    Grammar,
    GrammarError,
    Name,
    PCData,
    Repeat,
    Seq,
    UNBOUNDED,
)

__all__ = ["XSDParseError", "parse_xsd", "is_xsd"]


class XSDParseError(GrammarError):
    """Raised for malformed schemas or unsupported XSD features."""


def is_xsd(text: str) -> bool:
    """Cheap sniff: does this text look like an XML Schema document?"""
    head = text[:4096]
    return "XMLSchema" in head or "<xs:schema" in head or "<xsd:schema" in head


def parse_xsd(text: str, root_element: str | None = None) -> Grammar:
    """Parse XSD text into a :class:`Grammar`.

    ``root_element`` picks the document element when the schema
    declares several global elements; defaults to the first one.
    """
    tree = parse_tree(text)
    if tree.local != "schema":
        raise XSDParseError(f"document element is <{tree.tag}>, expected an xs:schema")
    return _Lowering(tree).lower(root_element)


class _Lowering:
    """Lowers one xs:schema tree onto the Grammar model."""

    def __init__(self, schema: TreeNode) -> None:
        self.schema = schema
        self.named_types: dict[str, TreeNode] = {}
        self.global_elements: dict[str, TreeNode] = {}
        for child in schema.children:
            local = child.local
            if local == "complexType":
                name = child.get("name")
                if not name:
                    raise XSDParseError("top-level complexType requires a name")
                self.named_types[name] = child
            elif local == "element":
                name = child.get("name")
                if not name:
                    raise XSDParseError("top-level element requires a name")
                self.global_elements[name] = child
            elif local in ("simpleType", "annotation", "attribute", "attributeGroup", "notation"):
                continue
            elif local in ("group", "import", "include", "redefine", "override"):
                raise XSDParseError(f"unsupported schema construct xs:{local}")
        if not self.global_elements:
            raise XSDParseError("schema declares no global elements")
        #: element name → list of content models (same-named locals merge)
        self.models: dict[str, list[ContentModel]] = {}
        self.order: list[str] = []

    # ------------------------------------------------------------------

    def lower(self, root_element: str | None) -> Grammar:
        root = root_element or next(iter(self.global_elements))
        if root not in self.global_elements:
            raise XSDParseError(f"no global element {root!r} in schema")
        for name, el in self.global_elements.items():
            self._collect_element(name, el)

        decls: dict[str, ElementDecl] = {}
        # root first: Grammar/Algorithm-1 convention
        ordered = [root, *[n for n in self.order if n != root]]
        for name in ordered:
            models = self.models.get(name, [PCData()])
            merged = models[0] if len(models) == 1 else _merge_models(models)
            decls[name] = ElementDecl(name, merged)
        return Grammar(root=root, elements=decls)

    # ------------------------------------------------------------------

    def _collect_element(self, name: str, el: TreeNode) -> None:
        """Record the content model of one element declaration."""
        model = self._element_model(el)
        bucket = self.models.setdefault(name, [])
        if name not in self.order:
            self.order.append(name)
        if not any(m == model for m in bucket):
            bucket.append(model)

    def _element_model(self, el: TreeNode) -> ContentModel:
        inline = el.find("complexType")
        if inline is not None:
            return self._complex_type(inline)
        type_name = el.get("type")
        if type_name is None:
            return PCData()  # element with neither type nor body: text
        local = type_name.rsplit(":", 1)[-1]
        if local in self.named_types:
            return self._complex_type(self.named_types[local])
        # any other (xs:string, xs:int, user simpleType, ...) is text
        return PCData()

    def _complex_type(self, ct: TreeNode) -> ContentModel:
        mixed = ct.get("mixed") in ("true", "1")
        particle: ContentModel | None = None
        for child in ct.children:
            local = child.local
            if local in ("sequence", "choice", "all"):
                particle = self._particle(child)
            elif local == "simpleContent":
                return PCData()
            elif local == "complexContent":
                raise XSDParseError("xs:complexContent (type derivation) is unsupported")
            elif local in ("attribute", "attributeGroup", "annotation", "anyAttribute"):
                continue
            elif local == "group":
                raise XSDParseError("xs:group references are unsupported")
        if particle is None:
            return PCData() if mixed else Empty()
        if mixed:
            # mixed content: text may interleave — same lowering as a
            # DTD's (#PCDATA | ...)* for feasibility purposes
            return Repeat(Choice((PCData(), particle)), 0, UNBOUNDED)
        return particle

    def _particle(self, node: TreeNode) -> ContentModel:
        local = node.local
        items: list[ContentModel] = []
        for child in node.children:
            cl = child.local
            if cl == "element":
                items.append(self._element_particle(child))
            elif cl in ("sequence", "choice", "all"):
                items.append(self._particle(child))
            elif cl == "any":
                items.append(_occurs(child, AnyContent()))
            elif cl == "annotation":
                continue
            elif cl == "group":
                raise XSDParseError("xs:group references are unsupported")
            else:
                raise XSDParseError(f"unsupported particle child xs:{cl}")
        if not items:
            inner: ContentModel = Empty()
        elif local == "sequence":
            inner = items[0] if len(items) == 1 else Seq(tuple(items))
        elif local == "choice":
            inner = items[0] if len(items) == 1 else Choice(tuple(items))
        else:  # xs:all → order-free over-approximation
            inner = Repeat(
                items[0] if len(items) == 1 else Choice(tuple(items)), 0, UNBOUNDED
            )
        return _occurs(node, inner)

    def _element_particle(self, el: TreeNode) -> ContentModel:
        ref = el.get("ref")
        if ref is not None:
            name = ref.rsplit(":", 1)[-1]
            if name not in self.global_elements:
                raise XSDParseError(f"element ref {ref!r} has no global declaration")
            return _occurs(el, Name(name))
        name = el.get("name")
        if name is None:
            raise XSDParseError("local element requires @name or @ref")
        if el.get("substitutionGroup") is not None:
            raise XSDParseError("substitutionGroup is unsupported")
        self._collect_element(name, el)
        return _occurs(el, Name(name))


def _occurs(node: TreeNode, inner: ContentModel) -> ContentModel:
    lo = int(node.get("minOccurs", "1"))
    max_raw = node.get("maxOccurs", "1")
    hi = UNBOUNDED if max_raw == "unbounded" else int(max_raw)
    if (lo, hi) == (1, 1):
        return inner
    if hi != UNBOUNDED and hi < lo:
        raise XSDParseError(f"maxOccurs {hi} < minOccurs {lo}")
    # DTD cardinalities are ?, *, +; wider XSD ranges are relaxed to the
    # nearest covering one (a sound over-approximation for feasibility)
    if lo == 0:
        return Repeat(inner, 0, 1 if hi == 1 else UNBOUNDED)
    return Repeat(inner, 1, UNBOUNDED)


def _merge_models(models: list[ContentModel]) -> ContentModel:
    """Merge same-named element declarations: either model may apply."""
    return Choice(tuple(models))
