"""Benchmark harness — shared machinery for every table/figure driver.

Each ``benchmarks/bench_*.py`` file regenerates one artifact of the
paper's evaluation (see DESIGN.md §4).  They all follow one pattern,
implemented here:

1. generate the dataset document (cached per ``(dataset, scale, seed)``);
2. run the sequential engine — its matches are the correctness
   reference and its counters the speedup denominator;
3. run one or more *versions* (Table 2 of the paper: PP-Transducer,
   GAP-NonSpec, GAP-Spec(20/40/80%), plus this reproduction's ablation
   variants) with ``n_chunks == n_cores``;
4. assert the matches are identical to the sequential run (a benchmark
   that returns wrong answers measures nothing);
5. convert the measured work counters into an N-core speedup with the
   :class:`~repro.parallel.simcluster.SimulatedCluster`.

Version names understood by :func:`make_engine` / :func:`run_version`:

=================  =====================================================
``seq``            sequential pushdown transducer
``pp``             PP-Transducer (the paper's baseline)
``gap-nonspec``    GAP, complete grammar (non-speculative)
``gap-spec20/40/80``  speculative GAP with an X% sampled grammar
``gap-learned``    speculative GAP with a grammar learned from a prior
                   document (Algorithm 3)
``gap-noswitch``   ablation: elimination on, data-structure switching off
``gap-noelim``     ablation: switching on, elimination off
``gap-eager``      ablation: eliminate at every tag, not just the
                   paper's three scenarios
=================  =====================================================
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from functools import lru_cache

from ..core.engine import GapEngine, PPTransducerEngine, QueryResult, SequentialEngine
from ..datasets.base import Dataset
from ..datasets.xpathmark import dataset_by_name
from ..grammar.sampling import sample_partial_grammar
from ..parallel.cost_model import CostModel, DEFAULT_COST_MODEL
from ..parallel.simcluster import SimReport, SimulatedCluster
from ..transducer.policies import ELIMINATE_ALWAYS, ELIMINATE_NEVER

__all__ = [
    "VERSIONS",
    "VersionRun",
    "generate_document",
    "make_engine",
    "run_version",
    "run_experiment",
    "geomean",
]

#: the paper's Table-2 version set
VERSIONS = ("pp", "gap-nonspec", "gap-spec20", "gap-spec40", "gap-spec80")


@dataclass(slots=True)
class VersionRun:
    """Outcome of one version on one workload."""

    version: str
    speedup: float
    report: SimReport
    result: QueryResult

    @property
    def avg_starting_paths(self) -> float:
        return self.result.stats.avg_starting_paths

    @property
    def speculation_accuracy(self) -> float:
        return self.result.stats.speculation_accuracy

    @property
    def reprocessing_cost(self) -> float:
        return self.result.stats.reprocessing_cost


@lru_cache(maxsize=16)
def generate_document(dataset_name: str, scale: float = 1.0, seed: int = 0) -> str:
    """Cached dataset generation (documents are deterministic)."""
    return dataset_by_name(dataset_name).generate(scale=scale, seed=seed)


def make_engine(
    version: str,
    queries: tuple[str, ...] | list[str],
    dataset: Dataset,
    n_chunks: int,
    spec_seed: int = 0,
    learn_from: str | None = None,
):
    """Construct the engine for a version name (see module docstring)."""
    queries = list(queries)
    if version == "seq":
        return SequentialEngine(queries)
    if version == "pp":
        return PPTransducerEngine(queries, n_chunks=n_chunks)
    if version == "gap-nonspec":
        return GapEngine(queries, grammar=dataset.grammar, n_chunks=n_chunks)
    if version.startswith("gap-spec"):
        fraction = int(version[len("gap-spec") :]) / 100.0
        partial = sample_partial_grammar(dataset.grammar, fraction, seed=spec_seed)
        return GapEngine(queries, grammar=partial, n_chunks=n_chunks)
    if version == "gap-learned":
        engine = GapEngine(queries, n_chunks=n_chunks)
        if learn_from is not None:
            engine.learn(learn_from)
        return engine
    if version == "gap-noswitch":
        return GapEngine(
            queries, grammar=dataset.grammar, n_chunks=n_chunks, switch_to_stack=False
        )
    if version == "gap-noelim":
        return GapEngine(
            queries, grammar=dataset.grammar, n_chunks=n_chunks, eliminate=ELIMINATE_NEVER
        )
    if version == "gap-eager":
        return GapEngine(
            queries, grammar=dataset.grammar, n_chunks=n_chunks, eliminate=ELIMINATE_ALWAYS
        )
    raise ValueError(f"unknown version {version!r}")


def run_version(
    version: str,
    dataset: Dataset,
    queries: list[str] | tuple[str, ...],
    text: str,
    reference: QueryResult,
    n_cores: int = 20,
    cost_model: CostModel | None = None,
    spec_seed: int = 0,
    learn_from: str | None = None,
) -> VersionRun:
    """Run one version and compute its simulated N-core speedup.

    ``reference`` must be the sequential run over the same ``text`` and
    ``queries`` — matches are asserted equal and its counters form the
    speedup denominator.
    """
    engine = make_engine(version, queries, dataset, n_cores, spec_seed, learn_from)
    result = engine.run(text) if version == "seq" else engine.run(text, n_chunks=n_cores)
    if result.offsets_by_id != reference.offsets_by_id:
        raise AssertionError(
            f"version {version} returned different matches than the sequential "
            f"engine on {dataset.name} — benchmark aborted"
        )
    cluster = SimulatedCluster(n_cores, cost_model or DEFAULT_COST_MODEL)
    report = cluster.schedule(
        result.stats.chunk_counters,
        reference.stats.counters,
        run_totals=result.stats.counters,
    )
    return VersionRun(version=version, speedup=report.speedup, report=report, result=result)


def run_experiment(
    dataset: Dataset,
    queries: list[str] | tuple[str, ...],
    versions: tuple[str, ...] = VERSIONS,
    scale: float = 1.0,
    seed: int = 0,
    n_cores: int = 20,
    cost_model: CostModel | None = None,
    spec_seed: int = 0,
) -> dict[str, VersionRun]:
    """Run a workload through several versions; returns version → run."""
    text = generate_document(dataset.name, scale, seed)
    reference = SequentialEngine(list(queries)).run(text)
    out: dict[str, VersionRun] = {}
    for version in versions:
        out[version] = run_version(
            version,
            dataset,
            queries,
            text,
            reference,
            n_cores=n_cores,
            cost_model=cost_model,
            spec_seed=spec_seed,
        )
    return out


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's aggregate for Figure 8 / Table 5)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return statistics.geometric_mean(vals)
