"""Structural-memoization microbenchmark + regression gate (``BENCH_8.json``).

Measures the dense kernel with the structural-repetition memo
(:mod:`repro.xpath.subseq`) against the plain dense kernel on the
repetitive paper workloads — Lineitem (one element skeleton repeated
per row) and XMark (partially repetitive item trees) — and gates CI on
the combined memo/plain throughput ratio.

Methodology mirrors :mod:`repro.bench.kernel_bench` exactly: chunks
are pre-split and pre-lexed so the measurement isolates transduction;
repeats are interleaved and the best wall-clock time per kernel is
kept; a full-pipeline run per configuration cross-checks that memo-on
and memo-off produce identical matches and counters before anything is
timed.  Two extra points specific to the memo:

* the memo runner is **warmed with one untimed pass** first — the
  steady-state regime (plans built, first-sight spans recorded) is
  what the memo exists for, and what production runs see from the
  second occurrence of a structure onward;
* the gated ratio is the **combined** plain/memo time over both
  datasets (per-dataset ratios are recorded alongside): Lineitem is
  where repetition dominates and the memo pays off, XMark bounds the
  overhead on partially repetitive input.
"""

from __future__ import annotations

import json
from time import perf_counter

from ..core.engine import GapEngine
from ..core.gap_transducer import GapPolicy
from ..core.kernel import DenseRunner
from ..datasets import dataset_by_name, generate_query_set
from ..xmlstream.chunking import split_chunks
from ..xmlstream.lexer import lex_range
from ..xpath.compile_tables import compiled_tables
from ..xpath.subseq import MemoTable
from .kernel_bench import DEFAULT_THRESHOLD

__all__ = [
    "DEFAULT_WORKLOADS",
    "measure_memo_speedup",
    "memo_gate_failures",
    "format_memo_report",
]

#: (dataset, scale) pairs the gate runs — the paper's repetitive
#: workloads; Lineitem is weighted larger because per-row repetition is
#: its defining property
DEFAULT_WORKLOADS = (("lineitem", 8.0), ("xmark", 4.0))


def _measure_one(
    dataset: str, scale: float, n_chunks: int, n_queries: int,
    repeats: int, seed: int,
) -> dict:
    ds = dataset_by_name(dataset)
    text = ds.generate(scale=scale, seed=seed)
    queries = generate_query_set(ds, n_queries)

    # correctness cross-check through the full pipeline before timing:
    # a benchmark of a wrong memo is worthless
    memo_run = GapEngine(queries, grammar=ds.grammar, memo=True).run(
        text, n_chunks=n_chunks
    )
    plain_run = GapEngine(queries, grammar=ds.grammar, memo=False).run(
        text, n_chunks=n_chunks
    )
    if memo_run.matches != plain_run.matches:
        raise RuntimeError(f"memo mismatch on {dataset}: matches diverged")
    if memo_run.stats.counters != plain_run.stats.counters:
        raise RuntimeError(f"memo mismatch on {dataset}: counters diverged")

    engine = GapEngine(queries, grammar=ds.grammar)
    policy = GapPolicy(engine.automaton, engine.table)
    chunks = split_chunks(text, n_chunks)
    chunk_tokens = [list(lex_range(text, c.begin, c.end)) for c in chunks]
    n_tokens = sum(len(toks) for toks in chunk_tokens)
    initial = frozenset((engine.automaton.initial,))
    tables = compiled_tables(engine.automaton, engine.table, engine.anchor_sids)

    def run_all(runner) -> float:
        t0 = perf_counter()
        for chunk, toks in zip(chunks, chunk_tokens):
            start = initial if chunk.index == 0 else None
            runner.run_chunk(toks, chunk.index, chunk.begin, chunk.end,
                             start_states=start)
        return perf_counter() - t0

    # a private memo table: the measurement must not inherit (or leak)
    # state through the process-wide registry or the artifact store
    memo_table = MemoTable(tables)
    plain = DenseRunner(engine.automaton, policy, engine.anchor_sids)
    memoized = DenseRunner(engine.automaton, policy, engine.anchor_sids,
                           memo=memo_table)
    run_all(memoized)  # warm: plans built, first-sight spans recorded
    run_all(plain)
    plain_times: list[float] = []
    memo_times: list[float] = []
    for _ in range(repeats):  # interleaved so drift hits both kernels
        plain_times.append(run_all(plain))
        memo_times.append(run_all(memoized))
    t_plain = min(plain_times)
    t_memo = min(memo_times)
    stats = memo_table.stats()

    return {
        "dataset": dataset,
        "scale": scale,
        "tokens": n_tokens,
        "bytes": len(text),
        "matches": sum(len(v) for v in memo_run.matches.values()),
        "plain_seconds": t_plain,
        "memo_seconds": t_memo,
        "plain_tokens_per_s": n_tokens / t_plain,
        "memo_tokens_per_s": n_tokens / t_memo,
        "memo_over_plain": t_plain / t_memo,
        "memo_hits": stats["hits"],
        "memo_misses": stats["misses"],
        "memo_rejects": stats["rejects"],
        "memo_sequences": stats["sequences"],
    }


def measure_memo_speedup(
    workloads=DEFAULT_WORKLOADS,
    n_chunks: int = 8,
    n_queries: int = 4,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    """Time memo vs plain dense kernel; return the comparison record."""
    datasets = [
        _measure_one(name, scale, n_chunks, n_queries, repeats, seed)
        for name, scale in workloads
    ]
    t_plain = sum(d["plain_seconds"] for d in datasets)
    t_memo = sum(d["memo_seconds"] for d in datasets)
    return {
        "benchmark": "memo_speedup",
        "n_chunks": n_chunks,
        "n_queries": n_queries,
        "repeats": repeats,
        "datasets": datasets,
        "plain_seconds": t_plain,
        "memo_seconds": t_memo,
        "memo_over_plain": t_plain / t_memo,
    }


def memo_gate_failures(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression checks of ``current`` against ``baseline`` (empty = pass)."""
    failures: list[str] = []
    ratio = current["memo_over_plain"]
    base_ratio = baseline.get("memo_over_plain")
    if base_ratio is not None:
        floor = base_ratio * (1.0 - threshold)
        if ratio < floor:
            failures.append(
                f"memo/plain throughput ratio regressed: {ratio:.2f}x < "
                f"{floor:.2f}x (baseline {base_ratio:.2f}x - {threshold:.0%})"
            )
    min_ratio = baseline.get("min_ratio")
    if min_ratio is not None and ratio < min_ratio:
        failures.append(
            f"memo/plain throughput ratio {ratio:.2f}x below the recorded "
            f"floor {min_ratio:.2f}x"
        )
    return failures


def format_memo_report(record: dict) -> str:
    lines = [
        f"structural memoization — {record['n_chunks']} chunks, "
        f"{record['n_queries']} queries"
    ]
    for d in record["datasets"]:
        lines.append(
            f"  {d['dataset']:9s} scale {d['scale']:<4g} "
            f"{d['tokens']:7d} tokens: plain {d['plain_seconds'] * 1e3:7.2f} ms, "
            f"memo {d['memo_seconds'] * 1e3:7.2f} ms -> "
            f"{d['memo_over_plain']:.2f}x "
            f"(hits {d['memo_hits']}, rejects {d['memo_rejects']})"
        )
    lines.append(f"  combined memo/plain: {record['memo_over_plain']:.2f}x")
    return "\n".join(lines)


def main(out: str | None = None) -> dict:  # pragma: no cover - driver
    record = measure_memo_speedup()
    print(format_memo_report(record))
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    return record
