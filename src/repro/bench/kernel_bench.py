"""Kernel microbenchmark + regression gate (``repro bench``).

Measures raw chunk-executor throughput — the dense table-driven kernel
(:class:`repro.core.kernel.DenseRunner`) against the object-graph
interpreter (:class:`repro.transducer.runner.ChunkRunner`) — on the
XMark speedup workload, and gates CI on the ratio between them.

Methodology:

* the document is generated deterministically (``(scale, seed)``), the
  query set is the speedup benchmark's generated set, and the grammar
  is the dataset's DTD (non-speculative GAP policy, the paper's main
  configuration);
* chunks are pre-split and **pre-lexed**: both kernels execute the
  same materialised token lists, so the measurement isolates
  transduction (the part the kernels implement) from tokenisation
  (shared code);
* each kernel runs the whole chunk set ``repeats`` times; the best
  wall-clock time is kept (standard microbenchmark practice — the
  minimum is the least noisy estimator of the achievable time);
* before timing, one full-pipeline run per kernel cross-checks that
  both produce identical matches — a benchmark of a wrong kernel is
  worthless.

The gate compares the **dense/object throughput ratio** against the
recorded baseline (``BENCH_3.json``), not absolute tokens/s: the ratio
cancels host-speed differences, so the same baseline file gates laptop
and CI runs alike.  An absolute floor can be recorded in the baseline
(``min_ratio``) — the acceptance criterion that the dense kernel stay
at least 2× the object kernel is encoded there.
"""

from __future__ import annotations

import json
import os
from statistics import median
from time import perf_counter, time

from ..core.engine import GapEngine
from ..core.gap_transducer import GapPolicy
from ..core.kernel import DenseRunner
from ..datasets import dataset_by_name, generate_query_set
from ..transducer.runner import ChunkRunner
from ..xmlstream.chunking import split_chunks
from ..xmlstream.lexer import lex_range

__all__ = [
    "measure_kernel_throughput",
    "gate_failures",
    "discover_baselines",
    "append_history",
    "load_history",
    "history_failures",
    "run_bench",
]

#: tolerated relative drop of the dense/object ratio vs the baseline
DEFAULT_THRESHOLD = 0.15

#: where ``repro bench`` appends its rolling measurement history
DEFAULT_HISTORY = "benchmarks/results/history.jsonl"

#: ``--check-history`` compares against the rolling median of this many
#: most-recent records
HISTORY_WINDOW = 10

#: minimum prior records before the history check is meaningful
HISTORY_MIN_RECORDS = 3


def measure_kernel_throughput(
    dataset: str = "xmark",
    scale: float = 4.0,
    n_chunks: int = 8,
    n_queries: int = 4,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time both kernels on one workload; return the comparison record."""
    ds = dataset_by_name(dataset)
    text = ds.generate(scale=scale, seed=seed)
    queries = generate_query_set(ds, n_queries)

    # correctness cross-check through the full pipeline before timing
    dense_run = GapEngine(queries, grammar=ds.grammar, kernel="dense").run(
        text, n_chunks=n_chunks
    )
    object_run = GapEngine(queries, grammar=ds.grammar, kernel="object").run(
        text, n_chunks=n_chunks
    )
    if dense_run.matches != object_run.matches:
        raise RuntimeError("kernel mismatch: dense and object matches diverged")

    # reuse one engine's compiled automaton/table for the raw-kernel timing
    engine = GapEngine(queries, grammar=ds.grammar)
    policy = GapPolicy(engine.automaton, engine.table)
    chunks = split_chunks(text, n_chunks)
    chunk_tokens = [list(lex_range(text, c.begin, c.end)) for c in chunks]
    n_tokens = sum(len(toks) for toks in chunk_tokens)
    initial = frozenset((engine.automaton.initial,))

    def run_all(runner) -> float:
        t0 = perf_counter()
        for chunk, toks in zip(chunks, chunk_tokens):
            start = initial if chunk.index == 0 else None
            runner.run_chunk(toks, chunk.index, chunk.begin, chunk.end,
                             start_states=start)
        return perf_counter() - t0

    dense = DenseRunner(engine.automaton, policy, engine.anchor_sids)
    obj = ChunkRunner(engine.automaton, policy, engine.anchor_sids)
    # interleave the repeats so drift (thermal, page cache) hits both
    dense_times: list[float] = []
    object_times: list[float] = []
    for _ in range(repeats):
        object_times.append(run_all(obj))
        dense_times.append(run_all(dense))
    t_dense = min(dense_times)
    t_object = min(object_times)

    return {
        "benchmark": "kernel_throughput",
        "dataset": dataset,
        "scale": scale,
        "n_chunks": n_chunks,
        "n_queries": n_queries,
        "repeats": repeats,
        "tokens": n_tokens,
        "bytes": len(text),
        "matches": sum(len(v) for v in dense_run.matches.values()),
        "dense_seconds": t_dense,
        "object_seconds": t_object,
        "dense_tokens_per_s": n_tokens / t_dense,
        "object_tokens_per_s": n_tokens / t_object,
        "dense_over_object": t_object / t_dense,
    }


def gate_failures(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression checks of ``current`` against ``baseline`` (empty = pass)."""
    failures: list[str] = []
    ratio = current["dense_over_object"]
    base_ratio = baseline.get("dense_over_object")
    if base_ratio is not None:
        floor = base_ratio * (1.0 - threshold)
        if ratio < floor:
            failures.append(
                f"dense/object throughput ratio regressed: {ratio:.2f}x < "
                f"{floor:.2f}x (baseline {base_ratio:.2f}x - {threshold:.0%})"
            )
    min_ratio = baseline.get("min_ratio")
    if min_ratio is not None and ratio < min_ratio:
        failures.append(
            f"dense/object throughput ratio {ratio:.2f}x below the recorded "
            f"floor {min_ratio:.2f}x"
        )
    return failures


def discover_baselines(directory: str = ".") -> list[str]:
    """Every recorded ``BENCH_*.json`` baseline, in PR-number order.

    The gate runs against *all* of them — each PR that records a
    baseline keeps being enforced, not just the newest one.  Files
    whose ``BENCH_<n>`` prefix is non-numeric sort after the numbered
    ones, alphabetically.
    """
    import glob
    import re

    paths = glob.glob(os.path.join(directory, "BENCH_*.json"))

    def order(path: str) -> tuple[int, str]:
        m = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
        return (int(m.group(1)) if m else 1 << 31, os.path.basename(path))

    return sorted(paths, key=order)


def _gate_one(record_by_kind: dict, baseline: dict, path: str,
              threshold: float) -> list[str]:
    """Dispatch one baseline file to its benchmark's gate check."""
    kind = baseline.get("benchmark", "kernel_throughput")
    current = record_by_kind.get(kind)
    if current is None:
        return [f"{path}: no measurement for benchmark kind {kind!r}"]
    if kind == "memo_speedup":
        from .memo_bench import memo_gate_failures

        return memo_gate_failures(current, baseline, threshold)
    if kind == "stream_ingest":
        from .stream_bench import stream_gate_failures

        return stream_gate_failures(current, baseline, threshold)
    return gate_failures(current, baseline, threshold)


def append_history(record: dict, path: str = DEFAULT_HISTORY) -> None:
    """Append one measurement to the JSONL history (creating parents).

    A wall-clock ``recorded_at`` field is stamped here — the history is
    a trajectory over real time, unlike the deterministic artefacts.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    entry = dict(record)
    entry.setdefault("recorded_at", time())
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(path: str = DEFAULT_HISTORY) -> list[dict]:
    """Read the JSONL history (missing file → empty; bad lines skipped)."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return []
    records: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict):
            records.append(entry)
    return records


def history_failures(
    record: dict,
    history: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = HISTORY_WINDOW,
) -> list[str]:
    """Check ``record`` against the rolling median of recent history.

    Compares the dense/object ratio to the median of the last
    ``window`` comparable records (same dataset); with fewer than
    :data:`HISTORY_MIN_RECORDS` priors there is no meaningful centre
    and the check passes vacuously.
    """
    ratios = [
        h["dense_over_object"]
        for h in history
        if h.get("dataset") == record.get("dataset")
        and isinstance(h.get("dense_over_object"), (int, float))
    ][-window:]
    if len(ratios) < HISTORY_MIN_RECORDS:
        return []
    centre = median(ratios)
    floor = centre * (1.0 - threshold)
    ratio = record["dense_over_object"]
    if ratio < floor:
        return [
            f"dense/object ratio {ratio:.2f}x below the rolling-median floor "
            f"{floor:.2f}x (median of last {len(ratios)} runs: {centre:.2f}x, "
            f"threshold {threshold:.0%})"
        ]
    return []


def format_report(record: dict) -> str:
    lines = [
        f"kernel throughput — {record['dataset']} scale {record['scale']}, "
        f"{record['n_chunks']} chunks, {record['n_queries']} queries, "
        f"{record['tokens']} tokens",
        f"  object kernel: {record['object_tokens_per_s']:12,.0f} tokens/s "
        f"({record['object_seconds'] * 1e3:8.2f} ms)",
        f"  dense kernel:  {record['dense_tokens_per_s']:12,.0f} tokens/s "
        f"({record['dense_seconds'] * 1e3:8.2f} ms)",
        f"  dense/object:  {record['dense_over_object']:.2f}x",
    ]
    return "\n".join(lines)


def run_bench(
    dataset: str = "xmark",
    scale: float = 4.0,
    n_chunks: int = 8,
    n_queries: int = 4,
    repeats: int = 3,
    out: str | None = None,
    gate: bool = False,
    baseline_path: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    update_baseline: bool = False,
    history_path: str | None = DEFAULT_HISTORY,
    check_history: bool = False,
) -> int:
    """CLI body for ``repro bench``; returns the process exit code.

    ``baseline_path=None`` with ``gate=True`` discovers and enforces
    *every* ``BENCH_*.json`` baseline in the working directory,
    dispatching each to its benchmark's measurement and gate check; an
    explicit path gates against that one file only.  ``history_path``
    appends the measurement to a JSONL trajectory (``None`` disables);
    ``check_history`` additionally fails the run when the ratio drops
    more than ``threshold`` below the rolling median of prior records
    (loaded *before* this run is appended).
    """
    record = measure_kernel_throughput(
        dataset=dataset, scale=scale, n_chunks=n_chunks,
        n_queries=n_queries, repeats=repeats,
    )
    print(format_report(record))

    exit_code = 0
    if check_history:
        prior = load_history(history_path) if history_path else []
        failures = history_failures(record, prior, threshold)
        if failures:
            for failure in failures:
                print(f"history FAIL: {failure}")
            exit_code = 1
        elif len(prior) < HISTORY_MIN_RECORDS:
            print(f"history: only {len(prior)} prior record(s) "
                  f"(need {HISTORY_MIN_RECORDS}) — check skipped")
        else:
            print(f"history OK: dense/object {record['dense_over_object']:.2f}x "
                  f"within {threshold:.0%} of the rolling median")
    if history_path:
        append_history(record, history_path)
        print(f"# history appended to {history_path}")

    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"# results written to {out}")

    if update_baseline:
        # preserve a recorded floor across refreshes
        target = baseline_path or "BENCH_3.json"
        try:
            with open(target, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = {}
        if "min_ratio" in previous:
            record["min_ratio"] = previous["min_ratio"]
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"# baseline updated: {target}")

    if gate:
        paths = [baseline_path] if baseline_path else discover_baselines()
        if not paths:
            print("gate: no BENCH_*.json baselines found")
            return 1
        # each baseline names its benchmark; measure each kind once
        measured: dict[str, dict] = {"kernel_throughput": record}
        failed = False
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    baseline = json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"gate FAIL: cannot read baseline {path}: {exc}")
                failed = True
                continue
            kind = baseline.get("benchmark", "kernel_throughput")
            if kind == "memo_speedup" and kind not in measured:
                from .memo_bench import format_memo_report, measure_memo_speedup

                measured[kind] = measure_memo_speedup(repeats=repeats)
                print(format_memo_report(measured[kind]))
            if kind == "stream_ingest" and kind not in measured:
                from .stream_bench import (
                    format_stream_report,
                    measure_stream_ingest,
                )

                measured[kind] = measure_stream_ingest(repeats=repeats)
                print(format_stream_report(measured[kind]))
            failures = _gate_one(measured, baseline, path, threshold)
            if failures:
                for failure in failures:
                    print(f"gate FAIL [{path}]: {failure}")
                failed = True
            else:
                current = measured[kind]
                if kind == "kernel_throughput":
                    headline = (
                        f"dense/object {current['dense_over_object']:.2f}x")
                elif kind == "memo_speedup":
                    headline = (
                        f"memo/plain {current['memo_over_plain']:.2f}x")
                else:
                    headline = (f"stream efficiency "
                                f"{current['stream_efficiency']:.2f}x")
                print(f"gate OK [{path}]: {headline} "
                      f"(threshold {threshold:.0%})")
        if failed:
            return 1
    return exit_code
