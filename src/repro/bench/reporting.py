"""Plain-text reporting helpers for the benchmark drivers.

The benchmarks print the same rows/series the paper's tables and
figures report, as aligned ASCII tables — one table per artifact —
so `pytest benchmarks/ --benchmark-only -s` output can be compared
against the paper side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "format_table",
    "print_table",
    "format_series",
    "print_series",
    "series_table",
    "banner",
]


def banner(title: str) -> str:
    line = "=" * max(len(title), 8)
    return f"\n{line}\n{title}\n{line}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned table; floats get 2 decimals, None prints '-'."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out: list[str] = []
    if title:
        out.append(banner(title))
    out.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> None:
    print(format_table(headers, rows, title))


def series_table(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
) -> tuple[list[str], list[list[object]]]:
    """Figure data → ``(headers, rows)``: one x column + one per series."""
    headers = [x_label, *series.keys()]
    rows = [[x, *(series[name][i] for name in series)] for i, x in enumerate(xs)]
    return headers, rows


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure data: one x column plus one column per series."""
    headers, rows = series_table(x_label, xs, series)
    return format_table(headers, rows, title)


def print_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> None:
    print(format_series(x_label, xs, series, title))


def _fmt(v: object) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v != 0 and abs(v) < 0.01:
            return f"{v:.5f}"
        return f"{v:.2f}"
    return str(v)
