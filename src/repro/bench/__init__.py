"""Benchmark harness shared by the ``benchmarks/`` drivers."""

from .kernel_bench import gate_failures, measure_kernel_throughput, run_bench
from .harness import (
    VERSIONS,
    VersionRun,
    generate_document,
    geomean,
    make_engine,
    run_experiment,
    run_version,
)
from .reporting import banner, format_series, format_table, print_series, print_table

__all__ = [
    "VERSIONS",
    "VersionRun",
    "banner",
    "format_series",
    "format_table",
    "gate_failures",
    "generate_document",
    "geomean",
    "make_engine",
    "measure_kernel_throughput",
    "run_bench",
    "print_series",
    "print_table",
    "run_experiment",
    "run_version",
]
