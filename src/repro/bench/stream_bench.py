"""Streaming-ingest benchmark + regression gate (``BENCH_10.json``).

Measures :class:`repro.stream.StreamSession` end-to-end ingest (feed in
fixed-size pieces, incremental lexing, chunk sealing, continuous
evaluation, delta production) against the one-shot batch engine run on
the same document — replaying the stream's exact sealed partition so
the two sides do identical transduction work — and gates CI on the
combined batch/stream time ratio: the *stream efficiency*, how much of
batch throughput the streaming path retains.

Methodology mirrors :mod:`repro.bench.memo_bench`: a full correctness
cross-check (matches AND counters, stream vs batch) runs before
anything is timed; both sides are warmed once; repeats are interleaved
so clock drift hits both; the best wall-clock time per side is kept.
The timed stream session runs with ``track_matches=False`` — the
production posture, where matches leave through deltas and are never
accumulated.
"""

from __future__ import annotations

import json
from time import perf_counter

from ..core.engine import GapEngine
from ..datasets import dataset_by_name, generate_query_set
from ..stream import StreamSession
from ..xmlstream.chunking import Chunk
from .kernel_bench import DEFAULT_THRESHOLD

__all__ = [
    "DEFAULT_WORKLOADS",
    "measure_stream_ingest",
    "stream_gate_failures",
    "format_stream_report",
]

#: (dataset, scale) pairs the gate runs — Dblp is the paper's irregular
#: workload (deep, text-heavy), Lineitem the repetitive one; together
#: they bracket the sealing/flush behaviour of real feeds
DEFAULT_WORKLOADS = (("dblp", 4.0), ("lineitem", 8.0))


def _measure_one(
    dataset: str, scale: float, chunk_bytes: int, piece_bytes: int,
    n_queries: int, repeats: int, seed: int,
) -> dict:
    ds = dataset_by_name(dataset)
    text = ds.generate(scale=scale, seed=seed)
    queries = generate_query_set(ds, n_queries)
    pieces = [text[i:i + piece_bytes]
              for i in range(0, len(text), piece_bytes)]

    # correctness cross-check before timing: the stream must reproduce
    # the batch run byte-for-byte on its own sealed partition
    checked = StreamSession(queries, grammar=ds.grammar,
                            chunk_bytes=chunk_bytes)
    checked.sealed_log = []
    deltas = []
    for piece in pieces:
        deltas.extend(checked.feed(piece))
    deltas.extend(checked.finalize())
    chunks = [Chunk(i, begin, end)
              for i, (begin, end, _) in enumerate(checked.sealed_log)]
    engine = GapEngine(queries, grammar=ds.grammar)
    batch = engine.run(text, chunks=chunks)
    streamed: dict[str, list[int]] = {}
    for delta in deltas:
        for q, offs in delta.matches.items():
            streamed.setdefault(q, []).extend(offs)
    expected = {q: list(v) for q, v in batch.matches.items() if v}
    if streamed != expected:
        raise RuntimeError(f"stream mismatch on {dataset}: matches diverged")
    if checked.totals.as_dict() != batch.stats.counters.as_dict():
        raise RuntimeError(f"stream mismatch on {dataset}: counters diverged")

    def run_stream() -> float:
        session = StreamSession(queries, grammar=ds.grammar,
                                chunk_bytes=chunk_bytes,
                                track_matches=False)
        t0 = perf_counter()
        for piece in pieces:
            session.feed(piece)
        session.finalize()
        return perf_counter() - t0

    def run_batch() -> float:
        t0 = perf_counter()
        engine.run(text, chunks=chunks)
        return perf_counter() - t0

    run_stream()  # warm: tables compiled, caches primed
    run_batch()
    stream_times: list[float] = []
    batch_times: list[float] = []
    for _ in range(repeats):  # interleaved so drift hits both sides
        stream_times.append(run_stream())
        batch_times.append(run_batch())
    t_stream = min(stream_times)
    t_batch = min(batch_times)

    return {
        "dataset": dataset,
        "scale": scale,
        "bytes": len(text),
        "pieces": len(pieces),
        "chunks": len(chunks),
        "deltas": len(deltas),
        "matches": sum(len(v) for v in streamed.values()),
        "stream_seconds": t_stream,
        "batch_seconds": t_batch,
        "stream_mb_per_s": len(text) / t_stream / 1e6,
        "batch_mb_per_s": len(text) / t_batch / 1e6,
        "stream_efficiency": t_batch / t_stream,
    }


def measure_stream_ingest(
    workloads=DEFAULT_WORKLOADS,
    chunk_bytes: int = 4096,
    piece_bytes: int = 1024,
    n_queries: int = 4,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    """Time streaming ingest vs the batch run; return the record."""
    datasets = [
        _measure_one(name, scale, chunk_bytes, piece_bytes, n_queries,
                     repeats, seed)
        for name, scale in workloads
    ]
    t_stream = sum(d["stream_seconds"] for d in datasets)
    t_batch = sum(d["batch_seconds"] for d in datasets)
    return {
        "benchmark": "stream_ingest",
        "chunk_bytes": chunk_bytes,
        "piece_bytes": piece_bytes,
        "n_queries": n_queries,
        "repeats": repeats,
        "datasets": datasets,
        "stream_seconds": t_stream,
        "batch_seconds": t_batch,
        "stream_efficiency": t_batch / t_stream,
    }


def stream_gate_failures(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression checks of ``current`` against ``baseline`` (empty = pass)."""
    failures: list[str] = []
    ratio = current["stream_efficiency"]
    base_ratio = baseline.get("stream_efficiency")
    if base_ratio is not None:
        floor = base_ratio * (1.0 - threshold)
        if ratio < floor:
            failures.append(
                f"stream/batch efficiency regressed: {ratio:.2f}x < "
                f"{floor:.2f}x (baseline {base_ratio:.2f}x - {threshold:.0%})"
            )
    min_ratio = baseline.get("min_ratio")
    if min_ratio is not None and ratio < min_ratio:
        failures.append(
            f"stream/batch efficiency {ratio:.2f}x below the recorded "
            f"floor {min_ratio:.2f}x"
        )
    return failures


def format_stream_report(record: dict) -> str:
    lines = [
        f"streaming ingest — {record['piece_bytes']}-byte pieces, "
        f"{record['chunk_bytes']}-byte chunks, {record['n_queries']} queries"
    ]
    for d in record["datasets"]:
        lines.append(
            f"  {d['dataset']:9s} scale {d['scale']:<4g} "
            f"{d['bytes']:8d} bytes: stream {d['stream_seconds'] * 1e3:7.2f} ms "
            f"({d['stream_mb_per_s']:6.1f} MB/s), batch "
            f"{d['batch_seconds'] * 1e3:7.2f} ms -> "
            f"{d['stream_efficiency']:.2f}x "
            f"({d['chunks']} chunks, {d['deltas']} deltas)"
        )
    lines.append(
        f"  combined stream efficiency: {record['stream_efficiency']:.2f}x")
    return "\n".join(lines)


def main(out: str | None = None) -> dict:  # pragma: no cover - driver
    record = measure_stream_ingest()
    print(format_stream_report(record))
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    return record


if __name__ == "__main__":  # pragma: no cover - driver
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
